#include "workload/lubm_gen.h"

#include <string>

#include "util/rng.h"

namespace lbr {

namespace {

std::string UnivIri(uint32_t u) {
  return std::string(lubm::kNs) + "University" + std::to_string(u);
}
std::string DeptIri(uint32_t u, uint32_t d) {
  return std::string(lubm::kNs) + "Department" + std::to_string(d) +
         ".University" + std::to_string(u);
}
std::string ProfIri(uint32_t u, uint32_t d, uint32_t i) {
  return DeptIri(u, d) + "/Professor" + std::to_string(i);
}
std::string GradIri(uint32_t u, uint32_t d, uint32_t i) {
  return DeptIri(u, d) + "/GradStudent" + std::to_string(i);
}
std::string UndergradIri(uint32_t u, uint32_t d, uint32_t i) {
  return DeptIri(u, d) + "/Undergrad" + std::to_string(i);
}
std::string CourseIri(uint32_t u, uint32_t d, uint32_t i) {
  return DeptIri(u, d) + "/Course" + std::to_string(i);
}
std::string PubIri(uint32_t u, uint32_t d, uint32_t p, uint32_t i) {
  return DeptIri(u, d) + "/Professor" + std::to_string(p) + "/Pub" +
         std::to_string(i);
}

}  // namespace

std::string LubmDepartmentIri(uint32_t university, uint32_t department) {
  return DeptIri(university, department);
}

void GenerateLubm(const LubmConfig& cfg, const LubmSink& sink) {
  Rng rng(cfg.seed);

  auto add = [&sink](const std::string& s, const std::string& p,
                     const std::string& o) {
    sink(TermTriple{Term::Iri(s), Term::Iri(p), Term::Iri(o)});
  };
  auto add_lit = [&sink](const std::string& s, const std::string& p,
                         const std::string& o) {
    sink(TermTriple{Term::Iri(s), Term::Iri(p), Term::Literal(o)});
  };

  const char* interests[] = {"databases",  "graphics",  "systems",
                             "networking", "theory",    "ml",
                             "security",   "hci"};

  for (uint32_t u = 0; u < cfg.num_universities; ++u) {
    for (uint32_t d = 0; d < cfg.departments_per_university; ++d) {
      const std::string dept = DeptIri(u, d);
      add(dept, lubm::kSubOrganizationOf, UnivIri(u));

      // Professors. Professor 0 heads the department.
      for (uint32_t i = 0; i < cfg.professors_per_department; ++i) {
        const std::string prof = ProfIri(u, d, i);
        add(prof, lubm::kWorksFor, dept);
        // Roughly half are full professors (Q4-Q6 select on this class).
        if (i % 2 == 0) add(prof, lubm::kType, lubm::kFullProfessor);
        if (i == 0) add(prof, lubm::kHeadOf, dept);
        // Doctoral degree from a random university.
        add(prof, lubm::kDoctoralDegreeFrom,
            UnivIri(static_cast<uint32_t>(
                rng.Uniform(cfg.num_universities))));
        if (rng.Chance(cfg.research_interest_rate)) {
          add_lit(prof, lubm::kResearchInterest,
                  interests[rng.Uniform(std::size(interests))]);
        }
        if (rng.Chance(cfg.email_rate)) {
          add_lit(prof, lubm::kEmailAddress, prof + "@lubm.edu");
        }
        if (rng.Chance(cfg.telephone_rate)) {
          add_lit(prof, lubm::kTelephone,
                  "555-" + std::to_string(rng.Uniform(10000)));
        }
        if (rng.Chance(cfg.name_rate)) {
          add_lit(prof, lubm::kName, "Professor" + std::to_string(i));
        }
        // Courses taught: 1-3 per professor.
        uint32_t teaches = 1 + static_cast<uint32_t>(rng.Uniform(3));
        for (uint32_t c = 0; c < teaches; ++c) {
          add(prof, lubm::kTeacherOf,
              CourseIri(u, d,
                        static_cast<uint32_t>(
                            rng.Uniform(cfg.courses_per_department))));
        }
        // Publications.
        for (uint32_t pub = 0; pub < cfg.publications_per_professor; ++pub) {
          const std::string pub_iri = PubIri(u, d, i, pub);
          add(pub_iri, lubm::kType, lubm::kPublication);
          add(pub_iri, lubm::kPublicationAuthor, prof);
        }
      }

      // Graduate students.
      for (uint32_t i = 0; i < cfg.grad_students_per_department; ++i) {
        const std::string grad = GradIri(u, d, i);
        add(grad, lubm::kType, lubm::kGraduateStudent);
        add(grad, lubm::kMemberOf, dept);
        const uint32_t advisor_idx =
            static_cast<uint32_t>(rng.Uniform(cfg.professors_per_department));
        const std::string advisor = ProfIri(u, d, advisor_idx);
        add(grad, lubm::kAdvisor, advisor);
        add(grad, lubm::kUndergraduateDegreeFrom,
            UnivIri(static_cast<uint32_t>(
                rng.Uniform(cfg.num_universities))));
        // Courses taken; ~40% TA the course they take (closing the Q4/Q5
        // advisor-teacherOf-takesCourse triangle for some students).
        uint32_t takes = 1 + static_cast<uint32_t>(rng.Uniform(3));
        for (uint32_t c = 0; c < takes; ++c) {
          const std::string course = CourseIri(
              u, d,
              static_cast<uint32_t>(rng.Uniform(cfg.courses_per_department)));
          add(grad, lubm::kTakesCourse, course);
          if (c == 0 && rng.Chance(0.4)) {
            add(grad, lubm::kTeachingAssistantOf, course);
          }
        }
        // Some grad students co-author their advisor's publications.
        if (rng.Chance(0.5)) {
          add(PubIri(u, d, advisor_idx, 0), lubm::kPublicationAuthor, grad);
        }
        if (rng.Chance(cfg.email_rate)) {
          add_lit(grad, lubm::kEmailAddress, grad + "@lubm.edu");
        }
        if (rng.Chance(cfg.telephone_rate)) {
          add_lit(grad, lubm::kTelephone,
                  "555-" + std::to_string(rng.Uniform(10000)));
        }
        if (rng.Chance(cfg.name_rate)) {
          add_lit(grad, lubm::kName, "Grad" + std::to_string(i));
        }
      }

      // Undergraduates: bulk of the data, low per-entity fan-out.
      for (uint32_t i = 0; i < cfg.undergrad_students_per_department; ++i) {
        const std::string ug = UndergradIri(u, d, i);
        add(ug, lubm::kMemberOf, dept);
        uint32_t takes = 1 + static_cast<uint32_t>(rng.Uniform(4));
        for (uint32_t c = 0; c < takes; ++c) {
          add(ug, lubm::kTakesCourse,
              CourseIri(u, d,
                        static_cast<uint32_t>(
                            rng.Uniform(cfg.courses_per_department))));
        }
        if (rng.Chance(cfg.name_rate)) {
          add_lit(ug, lubm::kName, "Undergrad" + std::to_string(i));
        }
      }
    }
  }
}

std::vector<TermTriple> GenerateLubm(const LubmConfig& cfg) {
  std::vector<TermTriple> out;
  GenerateLubm(cfg, [&out](const TermTriple& t) { out.push_back(t); });
  return out;
}

}  // namespace lbr
