#ifndef LBR_WORKLOAD_UNIPROT_GEN_H_
#define LBR_WORKLOAD_UNIPROT_GEN_H_

#include <cstdint>
#include <vector>

#include "rdf/term.h"

namespace lbr {

/// Configuration for the UniProt-like protein-network generator.
///
/// Mirrors the entities the paper's E.2 queries touch: proteins with
/// recommended-name nodes, encoding genes, sequences, typed annotations
/// (disease / natural-variant / transmembrane with ranges), organisms, and
/// replacement chains. Optional attributes are emitted with partial rates so
/// the OPTIONAL patterns produce genuine NULL rows. The generator keeps E.2
/// Q2 empty (no entity carries both rdf:subject and encodedBy edges), as the
/// paper's Table 6.3 reports 0 results for it.
struct UniprotConfig {
  uint32_t num_proteins = 5000;
  /// Fraction of proteins from the "human" organism taxonomy node.
  double human_rate = 0.3;
  double gene_rate = 0.8;        ///< Protein has an encoding gene.
  double gene_name_rate = 0.7;   ///< Gene has a name (OPT in Q1/Q3/Q5).
  double fullname_rate = 0.75;   ///< Name node has a fullName.
  double replaces_rate = 0.1;
  double see_also_rate = 0.4;
  double annotation_rate = 0.9;  ///< Protein has >=1 annotation.
  double range_rate = 0.6;       ///< Transmembrane annotation has a range.
  uint64_t seed = 7;
};

namespace uniprot {
inline constexpr char kNs[] = "http://uniprot/";
inline constexpr char kType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
// Classes.
inline constexpr char kProtein[] = "http://uniprot/Protein";
inline constexpr char kGene[] = "http://uniprot/Gene";
inline constexpr char kSimpleSequence[] = "http://uniprot/Simple_Sequence";
inline constexpr char kStructuredName[] = "http://uniprot/Structured_Name";
inline constexpr char kDiseaseAnnotation[] =
    "http://uniprot/Disease_Annotation";
inline constexpr char kVariantAnnotation[] =
    "http://uniprot/Natural_Variant_Annotation";
inline constexpr char kTransmembraneAnnotation[] =
    "http://uniprot/Transmembrane_Annotation";
// Predicates.
inline constexpr char kRecommendedName[] = "http://uniprot/recommendedName";
inline constexpr char kFullName[] = "http://uniprot/fullName";
inline constexpr char kEncodedBy[] = "http://uniprot/encodedBy";
inline constexpr char kName[] = "http://uniprot/name";
inline constexpr char kSequence[] = "http://uniprot/sequence";
inline constexpr char kVersion[] = "http://uniprot/version";
inline constexpr char kValue[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#value";
inline constexpr char kOrganism[] = "http://uniprot/organism";
inline constexpr char kAnnotation[] = "http://uniprot/annotation";
inline constexpr char kComment[] =
    "http://www.w3.org/2000/01/rdf-schema#comment";
inline constexpr char kReplaces[] = "http://uniprot/replaces";
inline constexpr char kModified[] = "http://uniprot/modified";
inline constexpr char kMemberOf[] = "http://uniprot/memberOf";
inline constexpr char kContext[] = "http://uniprot/context";
inline constexpr char kLabel[] = "http://www.w3.org/2000/01/rdf-schema#label";
inline constexpr char kSeeAlso[] =
    "http://www.w3.org/2000/01/rdf-schema#seeAlso";
inline constexpr char kSubject[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#subject";
inline constexpr char kRange[] = "http://uniprot/range";
inline constexpr char kBegin[] = "http://uniprot/begin";
inline constexpr char kEnd[] = "http://uniprot/end";
// Fixed objects.
inline constexpr char kHumanTaxon[] = "http://uniprot/taxonomy/9606";
}  // namespace uniprot

/// Generates the UniProt-like dataset. Deterministic for a given config.
std::vector<TermTriple> GenerateUniprot(const UniprotConfig& config);

}  // namespace lbr

#endif  // LBR_WORKLOAD_UNIPROT_GEN_H_
