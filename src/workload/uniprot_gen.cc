#include "workload/uniprot_gen.h"

#include <string>

#include "util/rng.h"

namespace lbr {

namespace {

std::string ProteinIri(uint32_t i) {
  return std::string(uniprot::kNs) + "protein/P" + std::to_string(i);
}
std::string GeneIri(uint32_t i) {
  return std::string(uniprot::kNs) + "gene/G" + std::to_string(i);
}
std::string SeqIri(uint32_t i) {
  return std::string(uniprot::kNs) + "sequence/S" + std::to_string(i);
}
std::string NameIri(uint32_t i) {
  return std::string(uniprot::kNs) + "name/N" + std::to_string(i);
}
std::string AnnIri(uint32_t protein, uint32_t i) {
  return std::string(uniprot::kNs) + "annotation/P" + std::to_string(protein) +
         "_A" + std::to_string(i);
}
std::string RangeIri(uint32_t protein, uint32_t i) {
  return std::string(uniprot::kNs) + "range/P" + std::to_string(protein) +
         "_R" + std::to_string(i);
}
std::string ClusterIri(uint32_t i) {
  return std::string(uniprot::kNs) + "cluster/C" + std::to_string(i % 50);
}
std::string TaxonIri(uint32_t i) {
  return std::string(uniprot::kNs) + "taxonomy/" + std::to_string(10000 + i);
}

}  // namespace

std::vector<TermTriple> GenerateUniprot(const UniprotConfig& cfg) {
  std::vector<TermTriple> out;
  Rng rng(cfg.seed);

  auto add = [&out](const std::string& s, const std::string& p,
                    const std::string& o) {
    out.push_back(TermTriple{Term::Iri(s), Term::Iri(p), Term::Iri(o)});
  };
  auto add_lit = [&out](const std::string& s, const std::string& p,
                        const std::string& o) {
    out.push_back(TermTriple{Term::Iri(s), Term::Iri(p), Term::Literal(o)});
  };

  for (uint32_t i = 0; i < cfg.num_proteins; ++i) {
    const std::string protein = ProteinIri(i);
    add(protein, uniprot::kType, uniprot::kProtein);

    // Organism: a share are human (9606), the rest spread over taxa.
    if (rng.Chance(cfg.human_rate)) {
      add(protein, uniprot::kOrganism, uniprot::kHumanTaxon);
    } else {
      add(protein, uniprot::kOrganism,
          TaxonIri(static_cast<uint32_t>(rng.Uniform(200))));
    }

    // Recommended name node (partial fullName / type — Q1's inner OPT).
    const std::string name = NameIri(i);
    add(protein, uniprot::kRecommendedName, name);
    if (rng.Chance(cfg.fullname_rate)) {
      add_lit(name, uniprot::kFullName, "Protein full name " +
                                            std::to_string(i));
      add(name, uniprot::kType, uniprot::kStructuredName);
    }

    // Encoding gene (Q1/Q3/Q4/Q5 OPT chains hang off it).
    if (rng.Chance(cfg.gene_rate)) {
      const std::string gene = GeneIri(i);
      add(protein, uniprot::kEncodedBy, gene);
      if (rng.Chance(cfg.gene_name_rate)) {
        add_lit(gene, uniprot::kName, "GENE" + std::to_string(i));
        add(gene, uniprot::kType, uniprot::kGene);
      }
      // Q4's OPTIONAL { ?seq uni:context ?m . ?m schema:label ?b }: emitted
      // for NO gene, so the semi-join empties the slave side as the paper
      // observed on real UniProt.
    }

    // Sequence node.
    const std::string seq = SeqIri(i);
    add(protein, uniprot::kSequence, seq);
    add(seq, uniprot::kType, uniprot::kSimpleSequence);
    add_lit(seq, uniprot::kValue, "MSEQ" + std::to_string(i));
    if (rng.Chance(0.8)) {
      add_lit(seq, uniprot::kVersion, std::to_string(1 + rng.Uniform(5)));
    }
    if (rng.Chance(0.5)) {
      add(seq, uniprot::kMemberOf,
          ClusterIri(static_cast<uint32_t>(rng.Uniform(1000))));
    }

    // Replacement chain (Q5): ?a replaces ?b, with ?b modified on a fixed
    // date for a small selective subset.
    if (i > 0 && rng.Chance(cfg.replaces_rate)) {
      add(protein, uniprot::kReplaces, ProteinIri(i - 1));
    }
    add_lit(protein, uniprot::kModified,
            rng.Chance(0.05) ? "2008-01-15"
                             : "20" + std::to_string(10 + rng.Uniform(10)) +
                                   "-06-01");

    if (rng.Chance(cfg.see_also_rate)) {
      add(protein, uniprot::kSeeAlso,
          std::string(uniprot::kNs) + "citations/" +
              std::to_string(rng.Uniform(500)));
    }

    // Annotations: typed, with comments; transmembrane ones optionally have
    // begin/end ranges (Q7).
    if (rng.Chance(cfg.annotation_rate)) {
      uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(3));
      for (uint32_t a = 0; a < n; ++a) {
        const std::string ann = AnnIri(i, a);
        add(protein, uniprot::kAnnotation, ann);
        uint64_t kind = rng.Uniform(3);
        if (kind == 0) {
          add(ann, uniprot::kType, uniprot::kDiseaseAnnotation);
          add_lit(ann, uniprot::kComment, "disease comment " +
                                              std::to_string(i));
        } else if (kind == 1) {
          add(ann, uniprot::kType, uniprot::kVariantAnnotation);
          if (rng.Chance(0.7)) {
            add_lit(ann, uniprot::kComment,
                    "variant comment " + std::to_string(i));
          }
        } else {
          add(ann, uniprot::kType, uniprot::kTransmembraneAnnotation);
          if (rng.Chance(cfg.range_rate)) {
            const std::string range = RangeIri(i, a);
            add(ann, uniprot::kRange, range);
            uint32_t begin = static_cast<uint32_t>(rng.Uniform(500));
            add_lit(range, uniprot::kBegin, std::to_string(begin));
            add_lit(range, uniprot::kEnd,
                    std::to_string(begin + 5 + rng.Uniform(40)));
          }
        }
      }
    }
  }
  // Note: no rdf:subject triples are generated, so E.2 Q2 is empty, matching
  // the paper's Table 6.3 (0 results, detected early by active pruning).
  return out;
}

}  // namespace lbr
