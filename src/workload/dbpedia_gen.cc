#include "workload/dbpedia_gen.h"

#include <string>

#include "util/rng.h"

namespace lbr {

namespace {

std::string Res(const std::string& kind, uint32_t i) {
  return std::string(dbp::kNs) + "resource/" + kind + std::to_string(i);
}

}  // namespace

std::vector<TermTriple> GenerateDbpedia(const DbpediaConfig& cfg) {
  std::vector<TermTriple> out;
  Rng rng(cfg.seed);

  auto add = [&out](const std::string& s, const std::string& p,
                    const std::string& o) {
    out.push_back(TermTriple{Term::Iri(s), Term::Iri(p), Term::Iri(o)});
  };
  auto add_lit = [&out](const std::string& s, const std::string& p,
                        const std::string& o) {
    out.push_back(TermTriple{Term::Iri(s), Term::Iri(p), Term::Literal(o)});
  };

  // --- Populated places (E.3 Q1: mandatory abstract/label/lat/long with a
  // cascade of OPTIONAL depiction/homepage/population/thumbnail).
  for (uint32_t i = 0; i < cfg.num_places; ++i) {
    const std::string place = Res("Place", i);
    add(place, dbp::kType, dbp::kPopulatedPlace);
    add_lit(place, dbp::kAbstract, "abstract of place " + std::to_string(i));
    add_lit(place, dbp::kLabel, "Place " + std::to_string(i));
    add_lit(place, dbp::kLat, std::to_string(rng.Uniform(180)));
    add_lit(place, dbp::kLong, std::to_string(rng.Uniform(360)));
    if (rng.Chance(0.5)) add(place, dbp::kDepiction, Res("Image", i));
    if (rng.Chance(0.3)) add(place, dbp::kHomepage, Res("Site", i));
    if (rng.Chance(0.6)) {
      add_lit(place, dbp::kPopulationTotal,
              std::to_string(1000 + rng.Uniform(1000000)));
    }
    if (rng.Chance(0.45)) add(place, dbp::kThumbnail, Res("Thumb", i));
    if (rng.Chance(0.4)) {
      add_lit(place, dbp::kGeorssPoint, std::to_string(rng.Uniform(100)));
    }
  }

  // --- Persons (Q3 wants thumbnail+label+page persons; the generator never
  // gives a thumbnail-holder a foaf:page, so Q3 is empty as in Table 6.4).
  for (uint32_t i = 0; i < cfg.num_persons; ++i) {
    const std::string person = Res("Person", i);
    add(person, dbp::kType, dbp::kPerson);
    add_lit(person, dbp::kLabel, "Person " + std::to_string(i));
    bool has_thumb = rng.Chance(0.3);
    if (has_thumb) {
      add(person, dbp::kThumbnail, Res("Thumb", 100000 + i));
    } else {
      add(person, dbp::kPage, Res("Wiki", i));
    }
    if (rng.Chance(0.25)) add(person, dbp::kHomepage, Res("Site", 50000 + i));
    if (rng.Chance(0.5)) {
      add_lit(person, dbp::kComment, "comment " + std::to_string(i));
    }
    if (rng.Chance(0.6)) add(person, dbp::kSkosSubject, Res("Category", i % 64));
    if (rng.Chance(0.7)) {
      add_lit(person, dbp::kFoafName, "Name " + std::to_string(i));
    }
  }

  // --- Soccer players (Q2: position+clubs mandatory; clubs never carry a
  // capacity, keeping Q2 empty as the paper reports).
  for (uint32_t i = 0; i < cfg.num_soccer_players; ++i) {
    const std::string player = Res("SoccerPlayer", i);
    add(player, dbp::kType, dbp::kSoccerPlayer);
    add(player, dbp::kPage, Res("Wiki", 200000 + i));
    add_lit(player, dbp::kPosition,
            (i % 4 == 0) ? "goalkeeper" : "midfielder");
    add(player, dbp::kClubs, Res("Club", i % 80));
    add(player, dbp::kBirthPlace, Res("Place", static_cast<uint32_t>(
                                                   rng.Uniform(cfg.num_places))));
    if (rng.Chance(0.5)) {
      add_lit(player, dbp::kNumber, std::to_string(1 + rng.Uniform(30)));
    }
  }

  // --- Settlements + airports (Q4).
  for (uint32_t i = 0; i < cfg.num_settlements; ++i) {
    const std::string town = Res("Settlement", i);
    add(town, dbp::kType, dbp::kSettlement);
    add_lit(town, dbp::kLabel, "Settlement " + std::to_string(i));
  }
  for (uint32_t i = 0; i < cfg.num_airports; ++i) {
    const std::string airport = Res("Airport", i);
    add(airport, dbp::kType, dbp::kAirport);
    add(airport, dbp::kCity,
        Res("Settlement", static_cast<uint32_t>(
                              rng.Uniform(cfg.num_settlements))));
    add_lit(airport, dbp::kIata, "IA" + std::to_string(i));
    if (rng.Chance(0.4)) add(airport, dbp::kHomepage, Res("Site", 90000 + i));
    if (rng.Chance(0.5)) {
      add_lit(airport, dbp::kNativeName, "Native " + std::to_string(i));
    }
  }

  // --- Companies (Q6's wide OPTIONAL fan: every attribute partial).
  for (uint32_t i = 0; i < cfg.num_companies; ++i) {
    const std::string company = Res("Company", i);
    add_lit(company, dbp::kComment, "company comment " + std::to_string(i));
    add(company, dbp::kPage, Res("Wiki", 300000 + i));
    if (rng.Chance(0.5)) add(company, dbp::kSkosSubject, Res("Category", i % 64));
    if (rng.Chance(0.4)) {
      add_lit(company, dbp::kIndustry, "industry" + std::to_string(i % 12));
    }
    if (rng.Chance(0.35)) add(company, dbp::kLocation, Res("Place", i % cfg.num_places));
    if (rng.Chance(0.3)) {
      add(company, dbp::kLocationCountry, Res("Country", i % 40));
    }
    if (rng.Chance(0.25)) {
      add(company, dbp::kLocationCity, Res("Place", (i * 7) % cfg.num_places));
      // A product manufactured by this company (the join inside the OPT).
      add(Res("Product", i), dbp::kManufacturer, company);
    }
    if (rng.Chance(0.2)) {
      add_lit(company, dbp::kProducts, "product line " + std::to_string(i));
      add(Res("Vehicle", i), dbp::kModel, company);
    }
    if (rng.Chance(0.3)) {
      add_lit(company, dbp::kGeorssPoint, std::to_string(rng.Uniform(100)));
    }
    if (rng.Chance(0.5)) add(company, dbp::kType, Res("Class", i % 32));
  }

  // --- Long-tail noise predicates (DBPedia's 57k-predicate shape).
  for (uint32_t t = 0; t < cfg.num_noise_triples; ++t) {
    uint32_t p = static_cast<uint32_t>(rng.Zipf(cfg.num_noise_predicates));
    add_lit(Res("Misc", static_cast<uint32_t>(rng.Uniform(5000))),
            std::string(dbp::kNs) + "property/noise" + std::to_string(p),
            "v" + std::to_string(rng.Uniform(1000)));
  }
  return out;
}

}  // namespace lbr
