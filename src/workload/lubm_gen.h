#ifndef LBR_WORKLOAD_LUBM_GEN_H_
#define LBR_WORKLOAD_LUBM_GEN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "rdf/term.h"

namespace lbr {

/// Configuration for the LUBM-like university-domain generator.
///
/// Mirrors the Lehigh University Benchmark schema closely enough that the
/// paper's Appendix E.1 queries (with OPTIONAL patterns added the way the
/// paper added them) are meaningful: partial attributes (email, telephone,
/// research interest) create genuine OPTIONAL misses, and the advisor /
/// takesCourse / teacherOf triangle creates the cyclic-GoJ queries Q4/Q5.
struct LubmConfig {
  uint32_t num_universities = 20;
  uint32_t departments_per_university = 4;
  uint32_t professors_per_department = 6;
  uint32_t grad_students_per_department = 20;
  uint32_t undergrad_students_per_department = 40;
  uint32_t courses_per_department = 10;
  uint32_t publications_per_professor = 3;
  /// Probability that an entity carries the optional attributes.
  double email_rate = 0.6;
  double telephone_rate = 0.5;
  double research_interest_rate = 0.7;
  double name_rate = 0.95;
  uint64_t seed = 42;
};

/// The vocabulary (IRIs) the generator emits and the E.1 queries reference.
namespace lubm {
inline constexpr char kNs[] = "http://lubm/";
// Classes.
inline constexpr char kFullProfessor[] = "http://lubm/FullProfessor";
inline constexpr char kGraduateStudent[] = "http://lubm/GraduateStudent";
inline constexpr char kPublication[] = "http://lubm/Publication";
// Predicates.
inline constexpr char kType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kTeachingAssistantOf[] =
    "http://lubm/teachingAssistantOf";
inline constexpr char kTakesCourse[] = "http://lubm/takesCourse";
inline constexpr char kPublicationAuthor[] = "http://lubm/publicationAuthor";
inline constexpr char kTeacherOf[] = "http://lubm/teacherOf";
inline constexpr char kAdvisor[] = "http://lubm/advisor";
inline constexpr char kResearchInterest[] = "http://lubm/researchInterest";
inline constexpr char kEmailAddress[] = "http://lubm/emailAddress";
inline constexpr char kTelephone[] = "http://lubm/telephone";
inline constexpr char kUndergraduateDegreeFrom[] =
    "http://lubm/undergraduateDegreeFrom";
inline constexpr char kDoctoralDegreeFrom[] = "http://lubm/doctoralDegreeFrom";
inline constexpr char kSubOrganizationOf[] = "http://lubm/subOrganizationOf";
inline constexpr char kHeadOf[] = "http://lubm/headOf";
inline constexpr char kWorksFor[] = "http://lubm/worksFor";
inline constexpr char kMemberOf[] = "http://lubm/memberOf";
inline constexpr char kName[] = "http://lubm/name";
}  // namespace lubm

/// Streaming sink the generator pushes triples into, one at a time. A sink
/// never sees a triple twice and sees them in the same deterministic order
/// the vector API returns them in.
using LubmSink = std::function<void(const TermTriple&)>;

/// Streaming core: generates the LUBM-like dataset and hands each triple to
/// `sink` as it is produced, never materializing the whole set. Peak memory
/// is O(1) in the dataset size, which is what lets the snapshot pipeline
/// build N-Triples files (or feed a parser) at scales where the vector API
/// would dominate RSS. Deterministic for a given config.
void GenerateLubm(const LubmConfig& config, const LubmSink& sink);

/// Generates the LUBM-like dataset as a vector. Wrapper over the streaming
/// core; identical triples in identical order.
std::vector<TermTriple> GenerateLubm(const LubmConfig& config);

/// IRI of department `d` of university `u`, for selective test queries
/// (the paper's Q4-Q6 fix a department).
std::string LubmDepartmentIri(uint32_t university, uint32_t department);

}  // namespace lbr

#endif  // LBR_WORKLOAD_LUBM_GEN_H_
