#include "rdf/ntriples.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lbr {

namespace {

void Fail(size_t line_no, const std::string& msg) {
  throw std::invalid_argument("N-Triples line " + std::to_string(line_no) +
                              ": " + msg);
}

void SkipWs(std::string_view line, size_t* i) {
  while (*i < line.size() && (line[*i] == ' ' || line[*i] == '\t')) ++(*i);
}

// Parses one term starting at *i; advances *i past it.
Term ParseTerm(std::string_view line, size_t* i, size_t line_no,
               bool allow_literal) {
  SkipWs(line, i);
  if (*i >= line.size()) Fail(line_no, "unexpected end of line");
  char c = line[*i];
  if (c == '<') {
    size_t end = line.find('>', *i + 1);
    if (end == std::string_view::npos) Fail(line_no, "unterminated IRI");
    Term t = Term::Iri(std::string(line.substr(*i + 1, end - *i - 1)));
    *i = end + 1;
    return t;
  }
  if (c == '_') {
    if (*i + 1 >= line.size() || line[*i + 1] != ':') {
      Fail(line_no, "malformed blank node");
    }
    size_t start = *i + 2;
    size_t end = start;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != '.') {
      ++end;
    }
    Term t = Term::Blank(std::string(line.substr(start, end - start)));
    *i = end;
    return t;
  }
  if (c == '"') {
    if (!allow_literal) Fail(line_no, "literal not allowed at this position");
    std::string value;
    size_t j = *i + 1;
    while (j < line.size() && line[j] != '"') {
      if (line[j] == '\\' && j + 1 < line.size()) {
        char esc = line[j + 1];
        switch (esc) {
          case 'n': value.push_back('\n'); break;
          case 't': value.push_back('\t'); break;
          case 'r': value.push_back('\r'); break;
          case '"': value.push_back('"'); break;
          case '\\': value.push_back('\\'); break;
          default: value.push_back(esc); break;
        }
        j += 2;
      } else {
        value.push_back(line[j]);
        ++j;
      }
    }
    if (j >= line.size()) Fail(line_no, "unterminated literal");
    ++j;  // closing quote
    // Fold language tag / datatype into the lexical form (the engine joins
    // on full term identity, so keeping them distinct terms is enough).
    if (j < line.size() && line[j] == '@') {
      size_t end = j;
      while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
      value += std::string(line.substr(j, end - j));
      j = end;
    } else if (j + 1 < line.size() && line[j] == '^' && line[j + 1] == '^') {
      size_t end = line.find('>', j);
      if (end == std::string_view::npos) Fail(line_no, "unterminated datatype");
      value += std::string(line.substr(j, end - j + 1));
      j = end + 1;
    }
    *i = j;
    return Term::Literal(std::move(value));
  }
  Fail(line_no, std::string("unexpected character '") + c + "'");
  return Term();  // unreachable
}

std::string EscapeLiteral(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

bool NTriples::ParseLine(std::string_view line, size_t line_no,
                         TermTriple* out) {
  size_t i = 0;
  SkipWs(line, &i);
  if (i >= line.size() || line[i] == '#' || line[i] == '\r') return false;
  out->s = ParseTerm(line, &i, line_no, /*allow_literal=*/false);
  out->p = ParseTerm(line, &i, line_no, /*allow_literal=*/false);
  if (out->p.kind != TermKind::kIri) Fail(line_no, "predicate must be an IRI");
  out->o = ParseTerm(line, &i, line_no, /*allow_literal=*/true);
  SkipWs(line, &i);
  if (i >= line.size() || line[i] != '.') Fail(line_no, "missing final '.'");
  return true;
}

std::vector<TermTriple> NTriples::ParseString(std::string_view text) {
  std::vector<TermTriple> out;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, nl - pos);
    ++line_no;
    TermTriple t;
    if (ParseLine(line, line_no, &t)) out.push_back(std::move(t));
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return out;
}

std::vector<TermTriple> NTriples::ParseStream(std::istream* in) {
  std::vector<TermTriple> out;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    TermTriple t;
    if (ParseLine(line, line_no, &t)) out.push_back(std::move(t));
  }
  return out;
}

std::string NTriples::ToLine(const TermTriple& t) {
  std::ostringstream os;
  auto render = [&os](const Term& term) {
    switch (term.kind) {
      case TermKind::kIri:
        os << '<' << term.value << '>';
        break;
      case TermKind::kLiteral:
        os << '"' << EscapeLiteral(term.value) << '"';
        break;
      case TermKind::kBlank:
        os << "_:" << term.value;
        break;
    }
  };
  render(t.s);
  os << ' ';
  render(t.p);
  os << ' ';
  render(t.o);
  os << " .";
  return os.str();
}

void NTriples::WriteStream(const std::vector<TermTriple>& triples,
                           std::ostream* out) {
  for (const TermTriple& t : triples) {
    *out << ToLine(t) << '\n';
  }
}

}  // namespace lbr
