#ifndef LBR_RDF_GRAPH_H_
#define LBR_RDF_GRAPH_H_

#include <cstdint>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace lbr {

/// An in-memory RDF graph: a finalized Dictionary plus the dictionary-encoded
/// triple set, deduplicated and sorted in (S, P, O) order.
///
/// Graph is the hand-off point between the data-producing side (N-Triples
/// parsing, workload generators) and the index builder (bitmat::TripleIndex).
class Graph {
 public:
  Graph() = default;

  /// Builds a graph from string-level triples. Duplicates are removed.
  static Graph FromTriples(const std::vector<TermTriple>& triples);

  const Dictionary& dict() const { return dict_; }
  const std::vector<Triple>& triples() const { return triples_; }

  size_t num_triples() const { return triples_.size(); }

  /// Dataset-characteristics row of Table 6.1.
  struct Stats {
    size_t num_triples = 0;
    uint32_t num_subjects = 0;
    uint32_t num_predicates = 0;
    uint32_t num_objects = 0;
    uint32_t num_common = 0;  ///< |Vso|, not in the paper's table but useful.
  };
  Stats ComputeStats() const;

 private:
  Dictionary dict_;
  std::vector<Triple> triples_;
};

}  // namespace lbr

#endif  // LBR_RDF_GRAPH_H_
