#ifndef LBR_RDF_NTRIPLES_H_
#define LBR_RDF_NTRIPLES_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/term.h"

namespace lbr {

/// Minimal N-Triples reader/writer (the serialization the paper's datasets
/// ship in; see RDF 1.1 N-Triples).
///
/// Supported syntax per line:  <s> <p> <o> .   where each position is an IRI
/// (<...>), a blank node (_:label), or — at object position — a literal
/// ("..." with optional @lang or ^^<datatype>, both folded into the lexical
/// form). Comment lines (#) and blank lines are skipped.
class NTriples {
 public:
  /// Parses one line; returns false on a skipped (blank/comment) line.
  /// Throws std::invalid_argument on malformed input, citing `line_no`.
  static bool ParseLine(std::string_view line, size_t line_no,
                        TermTriple* out);

  /// Parses a whole document.
  static std::vector<TermTriple> ParseString(std::string_view text);

  /// Parses an N-Triples file from a stream.
  static std::vector<TermTriple> ParseStream(std::istream* in);

  /// Serializes one triple as a canonical N-Triples line (no trailing \n).
  static std::string ToLine(const TermTriple& t);

  /// Writes a whole document.
  static void WriteStream(const std::vector<TermTriple>& triples,
                          std::ostream* out);
};

}  // namespace lbr

#endif  // LBR_RDF_NTRIPLES_H_
