#include "rdf/dictionary.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace lbr {

namespace {
constexpr uint8_t kSeenS = 1;
constexpr uint8_t kSeenO = 2;
constexpr uint8_t kSeenP = 4;
}  // namespace

void Dictionary::Add(const TermTriple& t) {
  assert(!finalized_);
  seen_[t.s] |= kSeenS;
  seen_[t.p] |= kSeenP;
  seen_[t.o] |= kSeenO;
}

void Dictionary::Finalize() {
  assert(!finalized_);
  // Deterministic ID assignment: sort terms within each class so that equal
  // datasets yield identical dictionaries regardless of insertion order.
  std::vector<const Term*> common, s_only, o_only, preds;
  for (const auto& [term, mask] : seen_) {
    bool is_s = mask & kSeenS;
    bool is_o = mask & kSeenO;
    if (is_s && is_o) {
      common.push_back(&term);
    } else if (is_s) {
      s_only.push_back(&term);
    } else if (is_o) {
      o_only.push_back(&term);
    }
    if (mask & kSeenP) preds.push_back(&term);
  }
  auto by_value = [](const Term* a, const Term* b) { return *a < *b; };
  std::sort(common.begin(), common.end(), by_value);
  std::sort(s_only.begin(), s_only.end(), by_value);
  std::sort(o_only.begin(), o_only.end(), by_value);
  std::sort(preds.begin(), preds.end(), by_value);

  num_common_ = static_cast<uint32_t>(common.size());
  subject_terms_.reserve(common.size() + s_only.size());
  object_terms_.reserve(common.size() + o_only.size());
  predicate_terms_.reserve(preds.size());

  for (const Term* t : common) {
    uint32_t id = static_cast<uint32_t>(subject_terms_.size());
    subject_ids_[*t] = id;
    object_ids_[*t] = id;
    subject_terms_.push_back(*t);
    object_terms_.push_back(*t);
  }
  for (const Term* t : s_only) {
    subject_ids_[*t] = static_cast<uint32_t>(subject_terms_.size());
    subject_terms_.push_back(*t);
  }
  for (const Term* t : o_only) {
    object_ids_[*t] = static_cast<uint32_t>(object_terms_.size());
    object_terms_.push_back(*t);
  }
  for (const Term* t : preds) {
    predicate_ids_[*t] = static_cast<uint32_t>(predicate_terms_.size());
    predicate_terms_.push_back(*t);
  }

  seen_.clear();
  finalized_ = true;
}

std::optional<uint32_t> Dictionary::SubjectId(const Term& t) const {
  assert(finalized_);
  auto it = subject_ids_.find(t);
  if (it == subject_ids_.end()) return std::nullopt;
  return it->second;
}

std::optional<uint32_t> Dictionary::PredicateId(const Term& t) const {
  assert(finalized_);
  auto it = predicate_ids_.find(t);
  if (it == predicate_ids_.end()) return std::nullopt;
  return it->second;
}

std::optional<uint32_t> Dictionary::ObjectId(const Term& t) const {
  assert(finalized_);
  auto it = object_ids_.find(t);
  if (it == object_ids_.end()) return std::nullopt;
  return it->second;
}

Triple Dictionary::Encode(const TermTriple& t) const {
  auto s = SubjectId(t.s);
  auto p = PredicateId(t.p);
  auto o = ObjectId(t.o);
  if (!s || !p || !o) {
    throw std::invalid_argument("Dictionary::Encode: unknown term in triple " +
                                t.s.ToString() + " " + t.p.ToString() + " " +
                                t.o.ToString());
  }
  return Triple(*s, *p, *o);
}

TermTriple Dictionary::Decode(const Triple& t) const {
  TermTriple out;
  out.s = SubjectTerm(t.s);
  out.p = PredicateTerm(t.p);
  out.o = ObjectTerm(t.o);
  return out;
}

namespace {

void WriteTerm(const Term& t, std::ostream* out) {
  uint8_t kind = static_cast<uint8_t>(t.kind);
  uint32_t len = static_cast<uint32_t>(t.value.size());
  out->write(reinterpret_cast<const char*>(&kind), 1);
  out->write(reinterpret_cast<const char*>(&len), sizeof(len));
  out->write(t.value.data(), len);
}

Term ReadTerm(std::istream* in) {
  uint8_t kind = 0;
  uint32_t len = 0;
  in->read(reinterpret_cast<char*>(&kind), 1);
  in->read(reinterpret_cast<char*>(&len), sizeof(len));
  std::string value(len, '\0');
  if (len > 0) in->read(value.data(), len);
  return Term(static_cast<TermKind>(kind), std::move(value));
}

constexpr char kDictMagic[8] = {'L', 'B', 'R', 'D', 'I', 'C', '0', '1'};

}  // namespace

void Dictionary::WriteTo(std::ostream* out) const {
  assert(finalized_);
  out->write(kDictMagic, sizeof(kDictMagic));
  uint32_t ns = num_subjects(), np = num_predicates(), no = num_objects();
  out->write(reinterpret_cast<const char*>(&num_common_), 4);
  out->write(reinterpret_cast<const char*>(&ns), 4);
  out->write(reinterpret_cast<const char*>(&np), 4);
  out->write(reinterpret_cast<const char*>(&no), 4);
  // The common range is stored once (subject_terms_ prefix == object_terms_
  // prefix); then the subject-only and object-only tails, then predicates.
  for (uint32_t i = 0; i < ns; ++i) WriteTerm(subject_terms_[i], out);
  for (uint32_t i = num_common_; i < no; ++i) WriteTerm(object_terms_[i], out);
  for (uint32_t i = 0; i < np; ++i) WriteTerm(predicate_terms_[i], out);
}

Dictionary Dictionary::ReadFrom(std::istream* in) {
  char magic[8];
  in->read(magic, sizeof(magic));
  if (!std::equal(magic, magic + 8, kDictMagic)) {
    throw std::runtime_error("Dictionary: bad magic");
  }
  Dictionary dict;
  uint32_t ns = 0, np = 0, no = 0;
  in->read(reinterpret_cast<char*>(&dict.num_common_), 4);
  in->read(reinterpret_cast<char*>(&ns), 4);
  in->read(reinterpret_cast<char*>(&np), 4);
  in->read(reinterpret_cast<char*>(&no), 4);
  dict.subject_terms_.reserve(ns);
  dict.object_terms_.reserve(no);
  dict.predicate_terms_.reserve(np);
  for (uint32_t i = 0; i < ns; ++i) {
    Term t = ReadTerm(in);
    dict.subject_ids_[t] = i;
    if (i < dict.num_common_) {
      dict.object_ids_[t] = i;
      dict.object_terms_.push_back(t);
    }
    dict.subject_terms_.push_back(std::move(t));
  }
  for (uint32_t i = dict.num_common_; i < no; ++i) {
    Term t = ReadTerm(in);
    dict.object_ids_[t] = i;
    dict.object_terms_.push_back(std::move(t));
  }
  for (uint32_t i = 0; i < np; ++i) {
    Term t = ReadTerm(in);
    dict.predicate_ids_[t] = i;
    dict.predicate_terms_.push_back(std::move(t));
  }
  dict.finalized_ = true;
  return dict;
}

}  // namespace lbr
