#include "rdf/graph.h"

#include <algorithm>

namespace lbr {

Graph Graph::FromTriples(const std::vector<TermTriple>& triples) {
  Graph g;
  for (const TermTriple& t : triples) g.dict_.Add(t);
  g.dict_.Finalize();
  g.triples_.reserve(triples.size());
  for (const TermTriple& t : triples) g.triples_.push_back(g.dict_.Encode(t));
  std::sort(g.triples_.begin(), g.triples_.end());
  g.triples_.erase(std::unique(g.triples_.begin(), g.triples_.end()),
                   g.triples_.end());
  return g;
}

Graph::Stats Graph::ComputeStats() const {
  Stats s;
  s.num_triples = triples_.size();
  s.num_subjects = dict_.num_subjects();
  s.num_predicates = dict_.num_predicates();
  s.num_objects = dict_.num_objects();
  s.num_common = dict_.num_common();
  return s;
}

}  // namespace lbr
