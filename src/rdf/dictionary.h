#ifndef LBR_RDF_DICTIONARY_H_
#define LBR_RDF_DICTIONARY_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace lbr {

/// Dictionary mapping string-level terms to the bitcube coordinates of
/// Appendix D.
///
/// Let Vs, Vp, Vo be the sets of distinct subject, predicate, and object
/// values and Vso = Vs ∩ Vo. IDs are assigned as:
///   - Vso        -> 0 .. |Vso|-1        (same ID on S and O dimension)
///   - Vs \ Vso   -> |Vso| .. |Vs|-1     (subject dimension only)
///   - Vo \ Vso   -> |Vso| .. |Vo|-1     (object dimension only)
///   - Vp         -> 0 .. |Vp|-1         (predicate dimension)
///
/// The shared low range is what makes S-O joins bitwise intersections: a
/// value can participate in an S-O join only if it occurs on both positions,
/// i.e. its ID is < |Vso|. Subject-only and object-only IDs overlap
/// numerically but never alias in a correct engine because any cross-
/// dimension intersection is truncated at |Vso| (Bitvector::TruncateBitsFrom).
///
/// Construction is two-phase: feed every triple to `Add`, then call
/// `Finalize` once; lookups and encoding are valid only after finalization.
class Dictionary {
 public:
  Dictionary() = default;

  /// Phase 1: registers the terms of one triple.
  void Add(const TermTriple& t);

  /// Phase 2: assigns IDs. Must be called exactly once, after all Add calls.
  void Finalize();
  bool finalized() const { return finalized_; }

  /// Encodes a term occurring at subject position. Returns nullopt if the
  /// term never occurs as a subject in the data.
  std::optional<uint32_t> SubjectId(const Term& t) const;
  /// Encodes a term occurring at predicate position.
  std::optional<uint32_t> PredicateId(const Term& t) const;
  /// Encodes a term occurring at object position.
  std::optional<uint32_t> ObjectId(const Term& t) const;

  /// Decodes a subject-dimension ID back to its term.
  const Term& SubjectTerm(uint32_t id) const { return subject_terms_.at(id); }
  const Term& PredicateTerm(uint32_t id) const {
    return predicate_terms_.at(id);
  }
  const Term& ObjectTerm(uint32_t id) const { return object_terms_.at(id); }

  /// Encodes a full triple. Precondition: all three terms were Added.
  Triple Encode(const TermTriple& t) const;
  /// Decodes a triple back to string-level terms.
  TermTriple Decode(const Triple& t) const;

  /// Binary serialization of a finalized dictionary (terms + ID layout).
  /// Together with TripleIndex persistence this makes a saved database
  /// usable across processes without re-reading the source triples.
  void WriteTo(std::ostream* out) const;
  static Dictionary ReadFrom(std::istream* in);

  /// |Vso|: values occurring as both subject and object. IDs below this
  /// bound are join-compatible across the S and O dimensions.
  uint32_t num_common() const { return num_common_; }
  /// |Vs|: size of the subject dimension.
  uint32_t num_subjects() const {
    return static_cast<uint32_t>(subject_terms_.size());
  }
  /// |Vp|: size of the predicate dimension.
  uint32_t num_predicates() const {
    return static_cast<uint32_t>(predicate_terms_.size());
  }
  /// |Vo|: size of the object dimension.
  uint32_t num_objects() const {
    return static_cast<uint32_t>(object_terms_.size());
  }

 private:
  struct TermHash {
    size_t operator()(const Term& t) const {
      return std::hash<std::string>()(t.value) * 31 +
             static_cast<size_t>(t.kind);
    }
  };
  using TermMap = std::unordered_map<Term, uint32_t, TermHash>;

  bool finalized_ = false;
  uint32_t num_common_ = 0;

  // Pre-finalization scratch: which positions each term occurs in.
  std::unordered_map<Term, uint8_t, TermHash> seen_;  // bit0=S bit1=O bit2=P

  TermMap subject_ids_;
  TermMap predicate_ids_;
  TermMap object_ids_;
  std::vector<Term> subject_terms_;
  std::vector<Term> predicate_terms_;
  std::vector<Term> object_terms_;
};

}  // namespace lbr

#endif  // LBR_RDF_DICTIONARY_H_
