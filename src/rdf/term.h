#ifndef LBR_RDF_TERM_H_
#define LBR_RDF_TERM_H_

#include <cstdint>
#include <string>

namespace lbr {

/// Kind of an RDF term. Blank nodes carry identifiers and behave like IRIs
/// in SPARQL evaluation (Section 2.2 of the paper: blank nodes are entities,
/// not NULLs).
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// An RDF term: an IRI, a literal, or a blank node.
///
/// Terms exist at the string level only. All query processing happens over
/// dictionary-assigned integer IDs (Appendix D); Term is used at load/parse
/// time and when rendering results back to strings.
struct Term {
  TermKind kind = TermKind::kIri;
  /// IRI without angle brackets, literal lexical form without quotes, or
  /// blank-node label without the "_:" prefix.
  std::string value;

  Term() = default;
  Term(TermKind k, std::string v) : kind(k), value(std::move(v)) {}

  static Term Iri(std::string v) { return Term(TermKind::kIri, std::move(v)); }
  static Term Literal(std::string v) {
    return Term(TermKind::kLiteral, std::move(v));
  }
  static Term Blank(std::string v) {
    return Term(TermKind::kBlank, std::move(v));
  }

  bool operator==(const Term& o) const {
    return kind == o.kind && value == o.value;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }
  bool operator<(const Term& o) const {
    if (kind != o.kind) return kind < o.kind;
    return value < o.value;
  }

  /// N-Triples surface syntax: <iri>, "literal", _:blank.
  std::string ToString() const;
};

/// A triple of string-level terms (parse/load representation).
struct TermTriple {
  Term s, p, o;

  bool operator==(const TermTriple& t) const {
    return s == t.s && p == t.p && o == t.o;
  }
  bool operator<(const TermTriple& t) const {
    if (!(s == t.s)) return s < t.s;
    if (!(p == t.p)) return p < t.p;
    return o < t.o;
  }
};

/// A dictionary-encoded triple. IDs follow the bitcube coordinate scheme of
/// Appendix D: subject and object IDs share the low range when the value
/// occurs on both positions (the Vso set), enabling S-O joins as bitwise
/// intersections.
struct Triple {
  uint32_t s = 0, p = 0, o = 0;

  Triple() = default;
  Triple(uint32_t s_, uint32_t p_, uint32_t o_) : s(s_), p(p_), o(o_) {}

  bool operator==(const Triple& t) const {
    return s == t.s && p == t.p && o == t.o;
  }
  bool operator<(const Triple& t) const {
    if (s != t.s) return s < t.s;
    if (p != t.p) return p < t.p;
    return o < t.o;
  }
};

}  // namespace lbr

#endif  // LBR_RDF_TERM_H_
