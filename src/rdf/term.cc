#include "rdf/term.h"

namespace lbr {

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + value + ">";
    case TermKind::kLiteral:
      return "\"" + value + "\"";
    case TermKind::kBlank:
      return "_:" + value;
  }
  return value;
}

}  // namespace lbr
