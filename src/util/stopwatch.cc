#include "util/stopwatch.h"

// Header-only; this translation unit exists so the build exposes one object
// per module and keeps the target layout uniform.
