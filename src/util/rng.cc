#include "util/rng.h"

#include <cmath>

namespace lbr {

uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF approximation of a Zipf(theta) distribution over n ranks.
  // Accurate enough for workload skew; not used where exact Zipf matters.
  double u = NextDouble();
  // u^(1/(1-theta)) concentrates mass near 0 for theta close to 1, making
  // rank 0 the most popular.
  double p = std::pow(u, 1.0 / (1.0 - theta));
  uint64_t r = static_cast<uint64_t>(static_cast<double>(n) * p);
  if (r >= n) r = n - 1;
  return r;
}

}  // namespace lbr
