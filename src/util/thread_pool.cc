#include "util/thread_pool.h"

#include <algorithm>

#include "util/fault_injection.h"

namespace lbr {

namespace {
/// Set while the current thread runs inside a ParallelFor chunk (of any
/// pool); nested collectives observe it and run inline.
thread_local bool tl_in_parallel_region = false;

struct ParallelRegionGuard {
  bool prev;
  ParallelRegionGuard() : prev(tl_in_parallel_region) {
    tl_in_parallel_region = true;
  }
  ~ParallelRegionGuard() { tl_in_parallel_region = prev; }
};
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int slots = std::max(1, num_threads);
  contexts_.reserve(slots);
  for (int i = 0; i < slots; ++i) {
    contexts_.push_back(std::make_unique<ExecContext>());
  }
  workers_.reserve(slots - 1);
  for (int i = 0; i < slots - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool ThreadPool::InParallelRegion() { return tl_in_parallel_region; }

void ThreadPool::RunChunks(const ChunkFn& fn, ExecContext* ctx, int slot) {
  ParallelRegionGuard region;
  for (;;) {
    uint64_t b = next_.fetch_add(job_grain_, std::memory_order_relaxed);
    if (b >= job_end_) break;
    uint32_t begin = static_cast<uint32_t>(b);
    uint32_t end = static_cast<uint32_t>(std::min<uint64_t>(
        job_end_, b + job_grain_));
    try {
      // Per-chunk cancellation check: an aborted query's remaining chunks
      // drain as first-exception captures instead of running to completion,
      // so a collective's abort latency is one chunk, not the whole range.
      if (ctx != nullptr) ctx->CheckCancel();
      // Dispatch fault site: fires before the chunk body runs, so a retry
      // (nothing partial has executed) just re-checks the trigger after
      // backoff. Exhaustion propagates through job_error_ like any chunk
      // exception.
      RetryTransient([] {
        FaultRegistry::Instance().MaybeInject(FaultSiteId::kThreadPoolDispatch);
      });
      fn(begin, end, ctx, slot);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (job_error_ == nullptr) job_error_ = std::current_exception();
      // Abandon the rest of the range; in-flight chunks finish naturally.
      next_.store(job_end_, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::WorkerLoop(int slot) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const ChunkFn* fn;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk,
                    [&] { return stop_ || job_epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = job_epoch_;
      fn = job_fn_;
    }
    RunChunks(*fn, contexts_[slot].get(), slot);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--workers_remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(uint32_t begin, uint32_t end, uint32_t grain,
                             const ChunkFn& fn, ExecContext* caller_ctx) {
  if (begin >= end) return;
  grain = std::max<uint32_t>(1, grain);
  // Inline when there is nothing to fan out to, the range is one chunk
  // anyway, or we are already inside a collective (nesting would deadlock
  // on collective_mu_ and oversubscribe the machine).
  if (num_workers() == 0 || InParallelRegion() ||
      static_cast<uint64_t>(end) - begin <= grain) {
    ParallelRegionGuard region;
    fn(begin, end, caller_ctx, num_workers());
    return;
  }

  std::lock_guard<std::mutex> collective(collective_mu_);
  RunCollective(begin, end, grain, fn, caller_ctx);
}

void ThreadPool::RunCollective(uint32_t begin, uint32_t end, uint32_t grain,
                               const ChunkFn& fn, ExecContext* caller_ctx) {
  // Mirror the caller's query control onto the worker arenas for the
  // duration of this job, so chunks running on workers observe the same
  // deadline/cancel/budget state as the caller (DESIGN.md §9). The job
  // mutex publishes the stores to the workers.
  QueryControl* control =
      caller_ctx != nullptr ? caller_ctx->query_control() : nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int w = 0; w < num_workers(); ++w) {
      contexts_[w]->SetQueryControl(control);
    }
    job_fn_ = &fn;
    job_error_ = nullptr;
    job_end_ = end;
    job_grain_ = grain;
    next_.store(begin, std::memory_order_relaxed);
    workers_remaining_ = num_workers();
    ++job_epoch_;
  }
  work_cv_.notify_all();

  // The calling thread is the last slot and drains chunks like any worker.
  RunChunks(fn, caller_ctx != nullptr ? caller_ctx : contexts_.back().get(),
            num_workers());

  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return workers_remaining_ == 0; });
  job_fn_ = nullptr;
  for (int w = 0; w < num_workers(); ++w) {
    contexts_[w]->SetQueryControl(nullptr);
  }
  if (job_error_ != nullptr) std::rethrow_exception(job_error_);
}

void ThreadPool::RunTaskGraph(const std::vector<TaskFn>& tasks,
                              const std::vector<std::vector<uint32_t>>& waves,
                              ExecContext* caller_ctx) {
  if (num_workers() == 0 || InParallelRegion()) {
    // Nothing to fan out to (or nesting would inline anyway): run the
    // waves serially in order on the caller's arena. The region guard
    // keeps any collective a task issues inline, matching the fanned path
    // where tasks always run inside chunks.
    ParallelRegionGuard region;
    for (const std::vector<uint32_t>& wave : waves) {
      for (uint32_t t : wave) tasks[t](caller_ctx, num_workers());
    }
    return;
  }

  // Hold the collective lock across every wave AND the telemetry
  // snapshot/merge: another thread's concurrent ParallelFor on this pool
  // would otherwise mutate the worker arenas the snapshot reads.
  std::lock_guard<std::mutex> collective(collective_mu_);

  // Snapshot the worker arenas' fold counters so their per-graph deltas
  // can be folded back into the caller's arena after the last wave.
  // (Chunks run on the calling thread use `caller_ctx` directly.)
  struct FoldCounters {
    uint64_t hits, misses, once;
  };
  std::vector<FoldCounters> before;
  before.reserve(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    const ExecContext& c = *contexts_[w];
    before.push_back({c.fold_cache_hits(), c.fold_cache_misses(),
                      c.fold_once_publishes()});
  }

  // A throwing task must not skip the epilogue: RunCollective drains the
  // wave (workers quiesce before it rethrows), then the first exception is
  // captured here, the remaining waves are abandoned, the telemetry merge
  // below still runs, and the exception is rethrown after it — so a failed
  // (or cancelled) graph leaves the pool reusable and the caller's stats
  // still account the waves that did run.
  std::exception_ptr first_error;
  for (const std::vector<uint32_t>& wave : waves) {
    if (wave.empty()) continue;
    try {
      // Between-wave cancellation check: wave boundaries are the graph's
      // natural barriers, so an aborted query skips whole waves.
      if (caller_ctx != nullptr) caller_ctx->CheckCancelNow();
      if (wave.size() == 1) {
        // Single task: skip the fan-out machinery, mirroring ParallelFor's
        // single-chunk inline path (same arena choice, same region guard).
        ParallelRegionGuard region;
        tasks[wave[0]](caller_ctx, num_workers());
      } else {
        RunCollective(
            0, static_cast<uint32_t>(wave.size()), /*grain=*/1,
            [&tasks, &wave](uint32_t begin, uint32_t end, ExecContext* ctx,
                            int slot) {
              for (uint32_t i = begin; i < end; ++i) tasks[wave[i]](ctx, slot);
            },
            caller_ctx);
      }
    } catch (...) {
      first_error = std::current_exception();
      break;
    }
  }

  if (caller_ctx != nullptr) {
    for (size_t w = 0; w < workers_.size(); ++w) {
      const ExecContext& c = *contexts_[w];
      caller_ctx->AddFoldTelemetry(c.fold_cache_hits() - before[w].hits,
                                   c.fold_cache_misses() - before[w].misses,
                                   c.fold_once_publishes() - before[w].once);
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace lbr
