#ifndef LBR_UTIL_STOPWATCH_H_
#define LBR_UTIL_STOPWATCH_H_

#include <chrono>

namespace lbr {

/// Wall-clock stopwatch used to report the paper's T_init / T_prune /
/// T_total timings (Section 6.1, "Evaluation Metrics").
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lbr

#endif  // LBR_UTIL_STOPWATCH_H_
