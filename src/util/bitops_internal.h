#ifndef LBR_UTIL_BITOPS_INTERNAL_H_
#define LBR_UTIL_BITOPS_INTERNAL_H_

#include "util/bitops.h"

/// Internal glue between the dispatcher (bitops.cc) and the per-ISA
/// translation units (bitops_sse42.cc, bitops_avx2.cc). Each ISA TU is
/// compiled with its own -m flags (CMake sets them per source file) and
/// exposes exactly one getter returning its table, or nullptr when the
/// compiler could not target that ISA. Nothing here is part of the public
/// bitops API.

namespace lbr {
namespace bitops {
namespace detail {

/// Mask of the bits of one word covered by [begin, end) when both fall in
/// that word's range. `lo`/`hi` are in-word bit offsets, hi exclusive.
inline uint64_t SpanMask(size_t lo, size_t hi) {
  uint64_t high = (hi >= 64) ? ~uint64_t{0} : (uint64_t{1} << hi) - 1;
  return high & ~((uint64_t{1} << lo) - 1);
}

/// Scalar reference table (always available; defined in bitops.cc).
const KernelTable* ScalarTable();
/// SSE4.2 table, or nullptr when this build cannot target SSE4.2.
const KernelTable* Sse42Table();
/// AVX2 table, or nullptr when this build cannot target AVX2.
const KernelTable* Avx2Table();

}  // namespace detail
}  // namespace bitops
}  // namespace lbr

#endif  // LBR_UTIL_BITOPS_INTERNAL_H_
