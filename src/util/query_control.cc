#include "util/query_control.h"

#include "util/fault_injection.h"

namespace lbr {

const char* QueryTerminationName(QueryTermination t) {
  switch (t) {
    case QueryTermination::kOk:
      return "ok";
    case QueryTermination::kDeadlineExceeded:
      return "deadline_exceeded";
    case QueryTermination::kCancelled:
      return "cancelled";
    case QueryTermination::kMemoryExceeded:
      return "memory_exceeded";
    case QueryTermination::kOverloaded:
      return "overloaded";
    case QueryTermination::kError:
      return "error";
  }
  return "unknown";
}

void QueryControl::PollNow() {
  if (aborted()) return;
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    Latch(QueryTermination::kDeadlineExceeded);
  }
}

void QueryControl::ChargeMemory(uint64_t bytes) {
  // Injection happens before the fetch_add so a simulated accounting
  // failure never leaks charged bytes into mem_used_.
  FaultRegistry::Instance().MaybeInject(FaultSiteId::kQueryControlCharge);
  uint64_t used = mem_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = mem_peak_.load(std::memory_order_relaxed);
  while (used > peak &&
         !mem_peak_.compare_exchange_weak(peak, used,
                                          std::memory_order_relaxed)) {
  }
  if (mem_budget_ != 0 && used > mem_budget_) {
    Latch(QueryTermination::kMemoryExceeded);
    ThrowAborted();
  }
}

void QueryControl::ThrowAborted() const {
  QueryTermination code = abort_code();
  std::string what = "query aborted: ";
  what += QueryTerminationName(code);
  if (code == QueryTermination::kMemoryExceeded) {
    what += " (used ~" + std::to_string(memory_used()) + " of " +
            std::to_string(mem_budget_) + " budget bytes)";
  }
  throw QueryAbortedError(code, what);
}

QueryOutcome QueryControl::Outcome() const {
  QueryTermination code = abort_code();
  if (code == QueryTermination::kOk) return {};
  return {code, QueryTerminationName(code)};
}

}  // namespace lbr
