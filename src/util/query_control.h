#ifndef LBR_UTIL_QUERY_CONTROL_H_
#define LBR_UTIL_QUERY_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace lbr {

/// Why a query's execution ended (the structured QueryOutcome codes).
/// kOk covers both complete runs and the paper's empty-absolute-master
/// shortcut (which is a *result*, not an abort — QueryStats keeps a
/// separate flag for it).
enum class QueryTermination : uint32_t {
  kOk = 0,
  kDeadlineExceeded = 1,  ///< The QueryControl deadline passed.
  kCancelled = 2,         ///< QueryControl::Cancel() was called.
  kMemoryExceeded = 3,    ///< A memory charge pushed usage over the budget.
  kOverloaded = 4,        ///< Admission control rejected the query.
  kError = 5,             ///< Any other failure (parse, unsupported, ...).
};

/// Stable lower-case name for logs / Explain / the shell.
const char* QueryTerminationName(QueryTermination t);

/// Structured end-of-query report: the termination code plus a
/// human-readable detail line. The zero value is a successful run.
struct QueryOutcome {
  QueryTermination code = QueryTermination::kOk;
  std::string message;
  bool ok() const { return code == QueryTermination::kOk; }
};

/// Thrown by the cooperative cancellation checks to unwind a query off the
/// engine's recursion/loops (and across ThreadPool collectives, which
/// propagate the first exception of a job). Carries the termination code so
/// catch sites can build a QueryOutcome without string matching.
class QueryAbortedError : public std::runtime_error {
 public:
  QueryAbortedError(QueryTermination code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  QueryTermination code() const { return code_; }

 private:
  QueryTermination code_;
};

/// Per-query lifecycle control: deadline, cooperative cancel flag, and
/// memory budget, with a latched structured abort reason.
///
/// Contract (DESIGN.md §9):
///  - Configure (SetDeadline / SetTimeout / SetMemoryBudget) BEFORE handing
///    the control to Engine::Execute; configuration is not thread-safe.
///  - Cancel() is the one mid-flight mutation and may be called from any
///    thread, any number of times.
///  - The abort reason latches first-wins into an atomic: once a reason is
///    set it never changes, so every thread of a parallel query unwinds
///    with the same code.
///  - A control is single-use: memory accounting is cumulative and the
///    latch never resets. Create a fresh control per query.
///
/// The hot-path cost when attached is one relaxed atomic load per check
/// (ThrowIfAborted); the clock is only read on strided PollNow() calls.
class QueryControl {
 public:
  QueryControl() = default;
  QueryControl(const QueryControl&) = delete;
  QueryControl& operator=(const QueryControl&) = delete;

  /// Absolute deadline; PollNow() latches kDeadlineExceeded once past it.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  /// Deadline relative to now.
  void SetTimeout(std::chrono::milliseconds timeout) {
    SetDeadline(std::chrono::steady_clock::now() + timeout);
  }
  bool has_deadline() const { return has_deadline_; }

  /// Memory budget in (approximate) bytes; 0 = unlimited. A ChargeMemory
  /// that pushes usage past the budget throws QueryAbortedError.
  void SetMemoryBudget(uint64_t bytes) { mem_budget_ = bytes; }

  /// Latches kCancelled (first reason wins). Thread-safe; the running
  /// query observes it at its next cancellation check.
  void Cancel() { Latch(QueryTermination::kCancelled); }

  /// True once an abort reason is latched.
  bool aborted() const {
    return abort_code_.load(std::memory_order_relaxed) != 0;
  }
  QueryTermination abort_code() const {
    return static_cast<QueryTermination>(
        abort_code_.load(std::memory_order_relaxed));
  }

  /// The fast check: one relaxed load; throws QueryAbortedError with the
  /// latched code when aborted. Called at loop/block/recursion granularity.
  void ThrowIfAborted() const {
    if (abort_code_.load(std::memory_order_relaxed) != 0) ThrowAborted();
  }

  /// The slow check: reads the clock and latches kDeadlineExceeded when the
  /// deadline passed. Called on a stride (ExecContext::CheckCancel) so the
  /// clock stays off the per-iteration path.
  void PollNow();

  /// Accounts `bytes` against the budget (relaxed; approximate by design —
  /// DESIGN.md §9 lists the charge points). Throws QueryAbortedError once
  /// usage exceeds a non-zero budget. Safe from any thread.
  void ChargeMemory(uint64_t bytes);
  void ReleaseMemory(uint64_t bytes) {
    mem_used_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  uint64_t memory_used() const {
    return mem_used_.load(std::memory_order_relaxed);
  }
  uint64_t memory_peak() const {
    return mem_peak_.load(std::memory_order_relaxed);
  }
  uint64_t memory_budget() const { return mem_budget_; }

  /// The latched reason as a structured outcome (kOk when never aborted).
  QueryOutcome Outcome() const;

 private:
  /// First reason wins; later latches are no-ops.
  void Latch(QueryTermination code) {
    uint32_t expected = 0;
    abort_code_.compare_exchange_strong(expected,
                                        static_cast<uint32_t>(code),
                                        std::memory_order_relaxed);
  }
  [[noreturn]] void ThrowAborted() const;

  std::atomic<uint32_t> abort_code_{0};  ///< 0 = running; else the code.
  /// Deadline is set before execution starts and read-only afterwards;
  /// workers inherit visibility through the pool's job-publication locks.
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  uint64_t mem_budget_ = 0;
  std::atomic<uint64_t> mem_used_{0};
  std::atomic<uint64_t> mem_peak_{0};
};

}  // namespace lbr

#endif  // LBR_UTIL_QUERY_CONTROL_H_
