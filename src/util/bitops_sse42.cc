#include "util/bitops_internal.h"

// SSE4.2 kernel backend — the mid-tier between scalar and AVX2, for
// hardware with 128-bit vectors and hardware popcount but no AVX2. Compiled
// with -msse4.2 -mpopcnt for this TU only; Sse42Table() checks CPUID and
// returns nullptr when the host cannot run it.
//
// Same contracts as the scalar kernels: unaligned loads/stores, never reads
// past the caller's word count, zero-tail invariant untouched, partial
// head/tail words of range kernels handled scalar.

#if defined(__SSE4_2__)

#include <nmmintrin.h>
#include <tmmintrin.h>

namespace lbr {
namespace bitops {
namespace {

using detail::SpanMask;

void AndWordsSse42(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    __m128i a1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 2));
    __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_and_si128(a0, b0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 2),
                     _mm_and_si128(a1, b1));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void OrWordsSse42(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    __m128i a1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 2));
    __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_or_si128(a0, b0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 2),
                     _mm_or_si128(a1, b1));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void AndNotWordsSse42(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_andnot_si128(b, a));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

uint64_t PopcountWordsSse42(const uint64_t* w, size_t n) {
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<uint64_t>(_mm_popcnt_u64(w[i]));
    c1 += static_cast<uint64_t>(_mm_popcnt_u64(w[i + 1]));
    c2 += static_cast<uint64_t>(_mm_popcnt_u64(w[i + 2]));
    c3 += static_cast<uint64_t>(_mm_popcnt_u64(w[i + 3]));
  }
  for (; i < n; ++i) c0 += static_cast<uint64_t>(_mm_popcnt_u64(w[i]));
  return c0 + c1 + c2 + c3;
}

uint64_t PopcountRangeSse42(const uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return 0;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    return static_cast<uint64_t>(_mm_popcnt_u64(
        w[first] & SpanMask(begin & 63, ((end - 1) & 63) + 1)));
  }
  uint64_t c = static_cast<uint64_t>(
      _mm_popcnt_u64(w[first] & SpanMask(begin & 63, 64)));
  c += PopcountWordsSse42(w + first + 1, last - first - 1);
  c += static_cast<uint64_t>(
      _mm_popcnt_u64(w[last] & SpanMask(0, ((end - 1) & 63) + 1)));
  return c;
}

void SetBitRangeSse42(uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    w[first] |= SpanMask(begin & 63, ((end - 1) & 63) + 1);
    return;
  }
  w[first] |= SpanMask(begin & 63, 64);
  size_t i = first + 1;
  const __m128i ones = _mm_set1_epi64x(-1);
  for (; i + 2 <= last; i += 2) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(w + i), ones);
  }
  for (; i < last; ++i) w[i] = ~uint64_t{0};
  w[last] |= SpanMask(0, ((end - 1) & 63) + 1);
}

bool AnyInRangeSse42(const uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return false;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    return (w[first] & SpanMask(begin & 63, ((end - 1) & 63) + 1)) != 0;
  }
  if ((w[first] & SpanMask(begin & 63, 64)) != 0) return true;
  size_t i = first + 1;
  for (; i + 2 <= last; i += 2) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    if (!_mm_testz_si128(v, v)) return true;
  }
  for (; i < last; ++i) {
    if (w[i] != 0) return true;
  }
  return (w[last] & SpanMask(0, ((end - 1) & 63) + 1)) != 0;
}

bool AllInRangeSse42(const uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return true;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    uint64_t span = SpanMask(begin & 63, ((end - 1) & 63) + 1);
    return (w[first] & span) == span;
  }
  uint64_t head = SpanMask(begin & 63, 64);
  if ((w[first] & head) != head) return false;
  size_t i = first + 1;
  const __m128i ones = _mm_set1_epi64x(-1);
  for (; i + 2 <= last; i += 2) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    if (!_mm_testc_si128(v, ones)) return false;
  }
  for (; i < last; ++i) {
    if (w[i] != ~uint64_t{0}) return false;
  }
  uint64_t tail = SpanMask(0, ((end - 1) & 63) + 1);
  return (w[last] & tail) == tail;
}

inline void ExtractWord(uint64_t word, uint32_t word_base,
                        std::vector<uint32_t>* out) {
  while (word != 0) {
    out->push_back(word_base + static_cast<uint32_t>(__builtin_ctzll(word)));
    word &= word - 1;
  }
}

void AppendSetBitsSse42(const uint64_t* w, size_t n, uint32_t base,
                        std::vector<uint32_t>* out) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    if (_mm_testz_si128(v, v)) continue;
    ExtractWord(w[i], base + static_cast<uint32_t>(i << 6), out);
    ExtractWord(w[i + 1], base + static_cast<uint32_t>((i + 1) << 6), out);
  }
  for (; i < n; ++i) {
    ExtractWord(w[i], base + static_cast<uint32_t>(i << 6), out);
  }
}

void AppendSetBitsInRangeSse42(const uint64_t* w, size_t begin, size_t end,
                               std::vector<uint32_t>* out) {
  if (begin >= end) return;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    ExtractWord(w[first] & SpanMask(begin & 63, ((end - 1) & 63) + 1),
                static_cast<uint32_t>(first << 6), out);
    return;
  }
  ExtractWord(w[first] & SpanMask(begin & 63, 64),
              static_cast<uint32_t>(first << 6), out);
  size_t i = first + 1;
  for (; i + 2 <= last; i += 2) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    if (_mm_testz_si128(v, v)) continue;
    ExtractWord(w[i], static_cast<uint32_t>(i << 6), out);
    ExtractWord(w[i + 1], static_cast<uint32_t>((i + 1) << 6), out);
  }
  for (; i < last; ++i) {
    ExtractWord(w[i], static_cast<uint32_t>(i << 6), out);
  }
  ExtractWord(w[last] & SpanMask(0, ((end - 1) & 63) + 1),
              static_cast<uint32_t>(last << 6), out);
}

void AppendAndSetBitsSse42(const uint64_t* a, const uint64_t* b, size_t n,
                           std::vector<uint32_t>* out) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    if (_mm_testz_si128(va, vb)) continue;
    ExtractWord(a[i] & b[i], static_cast<uint32_t>(i << 6), out);
    ExtractWord(a[i + 1] & b[i + 1], static_cast<uint32_t>((i + 1) << 6),
                out);
  }
  for (; i < n; ++i) {
    ExtractWord(a[i] & b[i], static_cast<uint32_t>(i << 6), out);
  }
}

struct ShuffleTable {
  alignas(16) uint8_t b[16][16];
};

constexpr ShuffleTable MakeShuffleTable() {
  ShuffleTable t{};
  for (int m = 0; m < 16; ++m) {
    int out = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((m & (1 << lane)) == 0) continue;
      for (int byte = 0; byte < 4; ++byte) {
        t.b[m][out * 4 + byte] = static_cast<uint8_t>(lane * 4 + byte);
      }
      ++out;
    }
    for (; out < 4; ++out) {
      for (int byte = 0; byte < 4; ++byte) {
        t.b[m][out * 4 + byte] = 0x80;
      }
    }
  }
  return t;
}

constexpr ShuffleTable kShuffleTable = MakeShuffleTable();

size_t IntersectSortedU32Sse42(const uint32_t* a, size_t na, const uint32_t* b,
                               size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, kept = 0;
  unsigned pending = 0;  // match mask of the live a block, not yet stored
  if (na >= 4 && nb >= 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    while (true) {
      __m128i cmp = _mm_cmpeq_epi32(va, vb);
      __m128i rot1 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
      __m128i rot2 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
      __m128i rot3 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3));
      cmp = _mm_or_si128(cmp, _mm_cmpeq_epi32(va, rot1));
      cmp = _mm_or_si128(
          cmp, _mm_or_si128(_mm_cmpeq_epi32(va, rot2),
                            _mm_cmpeq_epi32(va, rot3)));
      pending |= static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(cmp)));
      // Block maxima from the registers, not memory: earlier in-place
      // stores may have scribbled the retired prefix. Compacting only at
      // retirement keeps kept <= i at every store, so the 4-lane store's
      // scribble lanes never reach past the block being retired — the
      // invariant that makes out == a safe.
      uint32_t amax = static_cast<uint32_t>(_mm_extract_epi32(va, 3));
      uint32_t bmax = static_cast<uint32_t>(_mm_extract_epi32(vb, 3));
      bool advance_b = bmax <= amax;
      if (amax <= bmax) {
        if (pending != 0) {
          __m128i compacted = _mm_shuffle_epi8(
              va,
              _mm_load_si128(reinterpret_cast<const __m128i*>(
                  kShuffleTable.b[pending])));
          _mm_storeu_si128(reinterpret_cast<__m128i*>(out + kept), compacted);
          kept += static_cast<size_t>(__builtin_popcount(pending));
          pending = 0;
        }
        i += 4;
        if (i + 4 > na) break;
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (advance_b) {
        j += 4;
        if (j + 4 > nb) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  if (pending != 0) {
    // The loop exited on the b side with matches recorded for the live
    // a block. Its memory is pristine (stores stop at the last retired
    // block), so finish its four lanes in scalar: already-matched lanes
    // are emitted directly, the rest run the two-pointer search.
    for (int lane = 0; lane < 4; ++lane) {
      uint32_t av = a[i + lane];
      if ((pending >> lane) & 1u) {
        out[kept++] = av;
      } else {
        while (j < nb && b[j] < av) ++j;
        if (j < nb && b[j] == av) out[kept++] = b[j++];
      }
    }
    i += 4;
  }
  while (i < na && j < nb) {
    uint32_t av = a[i], bv = b[j];
    if (av < bv) {
      ++i;
    } else if (bv < av) {
      ++j;
    } else {
      out[kept++] = av;
      ++i;
      ++j;
    }
  }
  return kept;
}

constexpr detail::KernelTable kSse42Table = {
    "sse4.2",
    &AndWordsSse42,
    &OrWordsSse42,
    &AndNotWordsSse42,
    &PopcountWordsSse42,
    &PopcountRangeSse42,
    &SetBitRangeSse42,
    &AnyInRangeSse42,
    &AllInRangeSse42,
    &AppendSetBitsSse42,
    &AppendSetBitsInRangeSse42,
    &AppendAndSetBitsSse42,
    &IntersectSortedU32Sse42,
};

}  // namespace

namespace detail {

const KernelTable* Sse42Table() {
  static const bool supported =
      __builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt");
  return supported ? &kSse42Table : nullptr;
}

}  // namespace detail

}  // namespace bitops
}  // namespace lbr

#else  // !defined(__SSE4_2__)

namespace lbr {
namespace bitops {
namespace detail {

const KernelTable* Sse42Table() { return nullptr; }

}  // namespace detail
}  // namespace bitops
}  // namespace lbr

#endif  // defined(__SSE4_2__)
