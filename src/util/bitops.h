#ifndef LBR_UTIL_BITOPS_H_
#define LBR_UTIL_BITOPS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lbr {
namespace bitops {

/// Shared word-parallel kernels for the bit substrate.
///
/// Every bit container in the engine (Bitvector, CompressedRow decode paths,
/// BitMat fold/unfold) bottoms out here, so "bit operations as fast as the
/// hardware allows" has exactly one implementation to get right.
///
/// Word-alignment contract (see DESIGN.md):
///  - words are uint64_t, bit `i` of a logical array lives at word `i / 64`,
///    position `i % 64`, LSB first;
///  - callers guarantee every word past the logical size is zero (the
///    "zero-tail invariant"), so whole-word AND/OR/popcount never need a
///    per-call size mask;
///  - ranges are half-open `[begin, end)` in bit coordinates and must be
///    pre-clamped by the caller to the destination's logical size.

inline constexpr size_t kWordBits = 64;

/// Number of 64-bit words needed for `bits` bits.
constexpr size_t WordsFor(size_t bits) { return (bits + 63) >> 6; }

/// Mask selecting the live bits of the last word of a `bits`-bit array
/// (all ones when `bits` is a multiple of 64).
inline uint64_t TailMask(size_t bits) {
  size_t rem = bits & 63;
  return rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;
}

/// dst[i] &= src[i].
inline void AndWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

/// dst[i] |= src[i].
inline void OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

/// dst[i] &= ~src[i].
inline void AndNotWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

/// Total set bits in w[0..n).
inline uint64_t PopcountWords(const uint64_t* w, size_t n) {
  uint64_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c += static_cast<uint64_t>(__builtin_popcountll(w[i]));
  }
  return c;
}

/// True iff any bit of w[0..n) is set.
inline bool AnyWord(const uint64_t* w, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (w[i] != 0) return true;
  }
  return false;
}

/// True iff a[0..n) and b[0..n) share a set bit. Early-exits on the first
/// intersecting word.
inline bool AnyAndWord(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

/// Sets every bit in [begin, end) of `w`. A run decodes into at most two
/// partial-word masks plus whole ~0 words — no per-bit work.
void SetBitRange(uint64_t* w, size_t begin, size_t end);

/// Clears every bit in [begin, end) of `w`.
void ClearBitRange(uint64_t* w, size_t begin, size_t end);

/// True iff any bit in [begin, end) of `w` is set. Early-exits.
bool AnyInRange(const uint64_t* w, size_t begin, size_t end);

/// True iff every bit in [begin, end) of `w` is set. Early-exits on the
/// first hole — the word-parallel form of "does a 1-run survive a mask
/// whole", used by the copy-on-write unchanged-row tests.
bool AllInRange(const uint64_t* w, size_t begin, size_t end);

/// Number of set bits in [begin, end) of `w`.
uint64_t PopcountRange(const uint64_t* w, size_t begin, size_t end);

/// Appends the positions of all set bits of w[0..n), offset by `base`,
/// to `*out` in ascending order.
void AppendSetBits(const uint64_t* w, size_t n, uint32_t base,
                   std::vector<uint32_t>* out);

/// Appends the positions of the set bits of `w` inside [begin, end) to
/// `*out` in ascending order — the word-parallel form of "intersect a run
/// with a mask and keep the surviving positions". Zero mask words inside the
/// range are skipped at word granularity.
void AppendSetBitsInRange(const uint64_t* w, size_t begin, size_t end,
                          std::vector<uint32_t>* out);

/// Appends the positions of the set bits of a[0..n) & b[0..n) to `*out` in
/// ascending order, without materializing the intersection — the candidate
/// enumeration core of the multiway join (candidate bits ∧ constraint mask
/// → positions buffer in one pass). Words whose AND is zero cost one test.
void AppendAndSetBits(const uint64_t* a, const uint64_t* b, size_t n,
                      std::vector<uint32_t>* out);

}  // namespace bitops
}  // namespace lbr

#endif  // LBR_UTIL_BITOPS_H_
