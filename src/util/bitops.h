#ifndef LBR_UTIL_BITOPS_H_
#define LBR_UTIL_BITOPS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lbr {
namespace bitops {

/// Shared word-parallel kernels for the bit substrate.
///
/// Every bit container in the engine (Bitvector, CompressedRow decode paths,
/// BitMat fold/unfold) bottoms out here, so "bit operations as fast as the
/// hardware allows" has exactly one implementation to get right.
///
/// Word-alignment contract (see DESIGN.md §2, §8):
///  - words are uint64_t, bit `i` of a logical array lives at word `i / 64`,
///    position `i % 64`, LSB first;
///  - callers guarantee every word past the logical size is zero (the
///    "zero-tail invariant"), so whole-word AND/OR/popcount never need a
///    per-call size mask;
///  - ranges are half-open `[begin, end)` in bit coordinates and must be
///    pre-clamped by the caller to the destination's logical size.
///
/// Dispatch (DESIGN.md §8): the bulk kernels below route through a table of
/// function pointers selected once at startup from CPUID (AVX2, then
/// SSE4.2, then the portable scalar path). The scalar implementations are
/// both the fallback on older hardware and the correctness oracle for the
/// randomized differential suite (tests/simd_kernel_test). Setting the
/// LBR_FORCE_SCALAR environment variable (non-empty, not "0") pins the
/// scalar path regardless of CPU support. Word buffers need no particular
/// alignment — the vector paths use unaligned loads/stores — and never read
/// past `n` words, so the zero-tail invariant is preserved verbatim.

inline constexpr size_t kWordBits = 64;

/// Number of 64-bit words needed for `bits` bits.
constexpr size_t WordsFor(size_t bits) { return (bits + 63) >> 6; }

/// Mask selecting the live bits of the last word of a `bits`-bit array
/// (all ones when `bits` is a multiple of 64).
inline uint64_t TailMask(size_t bits) {
  size_t rem = bits & 63;
  return rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;
}

namespace detail {

/// The dispatched kernel set. One instance per backend; `ActiveKernels`
/// (below) picks among them once at startup. Members mirror the public
/// wrappers' contracts one-to-one.
struct KernelTable {
  const char* name;
  void (*and_words)(uint64_t* dst, const uint64_t* src, size_t n);
  void (*or_words)(uint64_t* dst, const uint64_t* src, size_t n);
  void (*andnot_words)(uint64_t* dst, const uint64_t* src, size_t n);
  uint64_t (*popcount_words)(const uint64_t* w, size_t n);
  uint64_t (*popcount_range)(const uint64_t* w, size_t begin, size_t end);
  void (*set_bit_range)(uint64_t* w, size_t begin, size_t end);
  bool (*any_in_range)(const uint64_t* w, size_t begin, size_t end);
  bool (*all_in_range)(const uint64_t* w, size_t begin, size_t end);
  void (*append_set_bits)(const uint64_t* w, size_t n, uint32_t base,
                          std::vector<uint32_t>* out);
  void (*append_set_bits_in_range)(const uint64_t* w, size_t begin,
                                   size_t end, std::vector<uint32_t>* out);
  void (*append_and_set_bits)(const uint64_t* a, const uint64_t* b, size_t n,
                              std::vector<uint32_t>* out);
  size_t (*intersect_sorted_u32)(const uint32_t* a, size_t na,
                                 const uint32_t* b, size_t nb, uint32_t* out);
};

/// The active table. Constant-initialized to the scalar table (so callers
/// running during static initialization of other TUs are always safe), then
/// upgraded once by the startup selector. Relaxed atomics keep the
/// concurrent reads of the parallel layer race-free; the pointer only
/// changes before threads exist (startup) or from single-threaded test
/// code (ForceKernelBackend).
extern std::atomic<const KernelTable*> g_active;

inline const KernelTable& Active() {
  return *g_active.load(std::memory_order_relaxed);
}

}  // namespace detail

/// Kernel backends in selection-priority order (highest last).
enum class KernelBackend : uint8_t { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// The table for `backend`, or nullptr when this build/CPU cannot run it
/// (scalar is always available).
const detail::KernelTable* KernelsFor(KernelBackend backend);

/// The backend the dispatcher selected (or was forced to).
KernelBackend ActiveKernelBackend();
/// Human-readable name of the active table ("scalar", "sse4.2", "avx2").
const char* ActiveKernelName();

/// Pins the active table to `backend` — test/bench hook for comparing
/// backends inside one process. No-op (returns false) when the backend is
/// unavailable. Not thread-safe against in-flight kernel calls; call it
/// only from single-threaded setup code.
bool ForceKernelBackend(KernelBackend backend);
/// Re-runs the startup selection (CPUID + LBR_FORCE_SCALAR).
void ResetKernelBackend();

/// dst[i] &= src[i].
inline void AndWords(uint64_t* dst, const uint64_t* src, size_t n) {
  detail::Active().and_words(dst, src, n);
}

/// dst[i] |= src[i].
inline void OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  detail::Active().or_words(dst, src, n);
}

/// dst[i] &= ~src[i].
inline void AndNotWords(uint64_t* dst, const uint64_t* src, size_t n) {
  detail::Active().andnot_words(dst, src, n);
}

/// Total set bits in w[0..n).
inline uint64_t PopcountWords(const uint64_t* w, size_t n) {
  return detail::Active().popcount_words(w, n);
}

/// True iff any bit of w[0..n) is set. Early-exits; stays scalar (the loop
/// is load+test, and the expected exit is within a few words).
inline bool AnyWord(const uint64_t* w, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (w[i] != 0) return true;
  }
  return false;
}

/// True iff a[0..n) and b[0..n) share a set bit. Early-exits on the first
/// intersecting word.
inline bool AnyAndWord(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

/// Sets every bit in [begin, end) of `w`. A run decodes into at most two
/// partial-word masks plus whole ~0 words — no per-bit work.
inline void SetBitRange(uint64_t* w, size_t begin, size_t end) {
  detail::Active().set_bit_range(w, begin, end);
}

/// Clears every bit in [begin, end) of `w`.
void ClearBitRange(uint64_t* w, size_t begin, size_t end);

/// True iff any bit in [begin, end) of `w` is set. Early-exits.
inline bool AnyInRange(const uint64_t* w, size_t begin, size_t end) {
  return detail::Active().any_in_range(w, begin, end);
}

/// True iff every bit in [begin, end) of `w` is set. Early-exits on the
/// first hole — the word-parallel form of "does a 1-run survive a mask
/// whole", used by the copy-on-write unchanged-row tests.
inline bool AllInRange(const uint64_t* w, size_t begin, size_t end) {
  return detail::Active().all_in_range(w, begin, end);
}

/// Number of set bits in [begin, end) of `w`.
inline uint64_t PopcountRange(const uint64_t* w, size_t begin, size_t end) {
  return detail::Active().popcount_range(w, begin, end);
}

/// Appends the positions of all set bits of w[0..n), offset by `base`,
/// to `*out` in ascending order.
inline void AppendSetBits(const uint64_t* w, size_t n, uint32_t base,
                          std::vector<uint32_t>* out) {
  detail::Active().append_set_bits(w, n, base, out);
}

/// Appends the positions of the set bits of `w` inside [begin, end) to
/// `*out` in ascending order — the word-parallel form of "intersect a run
/// with a mask and keep the surviving positions". Zero mask words inside the
/// range are skipped at word granularity.
inline void AppendSetBitsInRange(const uint64_t* w, size_t begin, size_t end,
                                 std::vector<uint32_t>* out) {
  detail::Active().append_set_bits_in_range(w, begin, end, out);
}

/// Appends the positions of the set bits of a[0..n) & b[0..n) to `*out` in
/// ascending order, without materializing the intersection — the candidate
/// enumeration core of the multiway join (candidate bits ∧ constraint mask
/// → positions buffer in one pass). Words whose AND is zero cost one test.
inline void AppendAndSetBits(const uint64_t* a, const uint64_t* b, size_t n,
                             std::vector<uint32_t>* out) {
  detail::Active().append_and_set_bits(a, b, n, out);
}

/// Intersects two sorted, duplicate-free uint32 position lists, writing the
/// common values (ascending) to `out` and returning how many were written.
/// `out` must have room for min(na, nb) entries; the vector path stores
/// whole 4-lane blocks, so slots past the returned count (but within that
/// bound) may be scribbled. Writing in place (`out == a`) is safe: the
/// output cursor never passes the `a` read cursor's loaded block. This is
/// the position ∧ constraint-row merge of
/// CompressedRow::IntersectSortedPositions.
inline size_t IntersectSortedU32(const uint32_t* a, size_t na,
                                 const uint32_t* b, size_t nb,
                                 uint32_t* out) {
  return detail::Active().intersect_sorted_u32(a, na, b, nb, out);
}

}  // namespace bitops
}  // namespace lbr

#endif  // LBR_UTIL_BITOPS_H_
