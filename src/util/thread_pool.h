#ifndef LBR_UTIL_THREAD_POOL_H_
#define LBR_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/exec_context.h"

namespace lbr {

/// Fixed-size worker pool built around one blocking collective:
/// `ParallelFor(begin, end, grain, fn)`.
///
/// Design (DESIGN.md §5):
///  - A pool of size N owns N-1 background workers; the calling thread is
///    the N-th execution slot and participates in every collective, so
///    `ThreadPool(1)` degenerates to plain inline execution with zero
///    synchronization.
///  - Each slot owns a private ExecContext scratch arena whose buffer
///    capacity survives across collectives — the parallel fold/unfold hot
///    path stays off the heap once warmed, exactly like the single-threaded
///    engine arena.
///  - Chunks of `grain` indexes are claimed from an atomic cursor
///    (work-stealing-lite): slow chunks do not stall fast workers, and the
///    caller keeps draining chunks instead of idling.
///  - Collectives never nest. A ParallelFor issued from inside a chunk (or
///    while another thread holds the pool) runs inline on the issuing
///    thread — this is what lets Engine::ExecuteBatch fan whole queries
///    across the pool while the per-query prune/fold code below it is
///    itself pool-aware without deadlocking.
///
/// Exceptions thrown by `fn` are captured (first one wins), the remaining
/// range is abandoned, and the exception is rethrown on the calling thread
/// after all workers have quiesced.
class ThreadPool {
 public:
  /// `num_threads` is the total parallelism including the calling thread;
  /// values < 1 are clamped to 1 (no workers, inline execution).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// std::thread::hardware_concurrency with a floor of 1.
  static int HardwareThreads();

  /// True while the current thread is executing inside a ParallelFor chunk
  /// of any pool. Used to force nested collectives inline.
  static bool InParallelRegion();

  /// Execution slots = workers + the calling thread.
  int num_slots() const { return num_workers() + 1; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Chunk body: [begin, end) of the iteration space, the slot's scratch
  /// arena, and the slot index (stable per worker; num_workers() for the
  /// calling thread). Slot indexes let callers keep per-slot state (e.g.
  /// one Engine per worker in a batch driver).
  using ChunkFn =
      std::function<void(uint32_t begin, uint32_t end, ExecContext* ctx,
                         int slot)>;

  /// Runs `fn` over [begin, end) in chunks of `grain` (clamped to >= 1).
  /// Blocks until the whole range is processed. Runs inline (single chunk,
  /// caller's thread) when the pool has no workers, the range fits in one
  /// chunk, or the call is nested inside another collective. `caller_ctx`,
  /// when given, is the arena handed to chunks run on the calling thread
  /// (inline or as the caller slot); null falls back to the pool's own
  /// caller-slot arena (or none when inline).
  void ParallelFor(uint32_t begin, uint32_t end, uint32_t grain,
                   const ChunkFn& fn, ExecContext* caller_ctx = nullptr);

  /// One task of a conflict-scheduled graph: runs with its execution
  /// slot's scratch arena (DESIGN.md §7).
  using TaskFn = std::function<void(ExecContext* ctx, int slot)>;

  /// Wave executor for a conflict-scheduled task DAG. `waves` holds
  /// indexes into `tasks`; each wave's tasks are fanned across the pool's
  /// slots (one ParallelFor, grain 1), with a full barrier between waves —
  /// wave k+1 starts only after every task of wave k returned, which is
  /// also the synchronization that hands matrices written in wave k to
  /// their readers in wave k+1. Tasks run out of their slot's private
  /// arena; after the last wave, the fold-telemetry deltas the worker
  /// arenas accumulated are merged into `caller_ctx` (when given) so
  /// per-query stats still observe scheduled work. Runs inline — serial,
  /// wave-major order, on `caller_ctx` — when the pool has no workers or
  /// the call is nested inside another collective. Exceptions propagate
  /// like ParallelFor's: the throwing wave drains (workers quiesce at its
  /// barrier), the first exception wins, remaining waves are abandoned,
  /// the telemetry merge still runs, and the exception is rethrown on the
  /// caller — a failed graph never wedges the pool.
  void RunTaskGraph(const std::vector<TaskFn>& tasks,
                    const std::vector<std::vector<uint32_t>>& waves,
                    ExecContext* caller_ctx = nullptr);

 private:
  void WorkerLoop(int slot);
  /// Claims and runs chunks of the active job until the range is drained.
  void RunChunks(const ChunkFn& fn, ExecContext* ctx, int slot);
  /// The fan-out body of ParallelFor: publishes the job, drains chunks on
  /// the calling thread, waits for worker quiescence, rethrows. Requires
  /// `collective_mu_` held — ParallelFor takes it per call, RunTaskGraph
  /// holds it across all waves so its worker-arena telemetry snapshot
  /// cannot race another thread's collective.
  void RunCollective(uint32_t begin, uint32_t end, uint32_t grain,
                     const ChunkFn& fn, ExecContext* caller_ctx);

  std::vector<std::thread> workers_;
  /// One arena per slot: [0, num_workers) for workers, num_workers() for
  /// the calling thread (used when the caller passes no arena of its own).
  std::vector<std::unique_ptr<ExecContext>> contexts_;

  /// Serializes collectives from distinct calling threads; a pool runs one
  /// ParallelFor at a time by design.
  std::mutex collective_mu_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: new job or shutdown
  std::condition_variable done_cv_;  // caller: all workers quiesced
  uint64_t job_epoch_ = 0;           // bumped per ParallelFor
  int workers_remaining_ = 0;        // workers yet to finish the active job
  bool stop_ = false;
  const ChunkFn* job_fn_ = nullptr;
  std::exception_ptr job_error_;

  /// Chunk cursor. 64-bit so fetch_add can overshoot `job_end_` by
  /// num_slots * grain without wrapping.
  std::atomic<uint64_t> next_{0};
  uint64_t job_end_ = 0;
  uint32_t job_grain_ = 1;
};

}  // namespace lbr

#endif  // LBR_UTIL_THREAD_POOL_H_
