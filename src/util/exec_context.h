#ifndef LBR_UTIL_EXEC_CONTEXT_H_
#define LBR_UTIL_EXEC_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/bitvector.h"
#include "util/query_control.h"

namespace lbr {

/// Per-engine scratch arena for the query hot path.
///
/// Fold results, unfold masks, and position buffers are needed thousands of
/// times per query but only transiently; allocating them fresh each time put
/// malloc on the prune/join critical path. An ExecContext keeps a free list
/// of Bitvectors and position vectors whose capacity survives across uses,
/// so a warmed-up engine performs zero heap allocations per prune iteration.
///
/// Ownership rules (see DESIGN.md):
///  - Acquire/Release pair up through the RAII guards below; a raw pointer
///    from Acquire* must never outlive its Release*.
///  - Buffer addresses are stable between Acquire and Release (the pool
///    hands out heap buffers, never elements of a reallocating vector).
///  - Release order is unconstrained (free list, not a stack).
///  - An ExecContext is single-threaded; concurrent branches each own one.
class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Hands out a pooled Bitvector. Contents are unspecified — callers must
  /// Resize + Clear (or fully overwrite) before use.
  Bitvector* AcquireBits() {
    if (bit_free_.empty()) {
      ++bits_created_;
      return new Bitvector();
    }
    Bitvector* bv = bit_free_.back().release();
    bit_free_.pop_back();
    return bv;
  }
  void ReleaseBits(Bitvector* bv) {
    bit_free_.emplace_back(bv);
  }

  /// Hands out a pooled position buffer, already cleared (capacity kept).
  std::vector<uint32_t>* AcquirePositions() {
    if (pos_free_.empty()) {
      ++positions_created_;
      return new std::vector<uint32_t>();
    }
    std::vector<uint32_t>* v = pos_free_.back().release();
    pos_free_.pop_back();
    v->clear();
    return v;
  }
  void ReleasePositions(std::vector<uint32_t>* v) {
    pos_free_.emplace_back(v);
  }

  /// Total distinct buffers ever created — a steady-state hot path should
  /// stop growing these after warm-up.
  size_t bitvectors_created() const { return bits_created_; }
  size_t positions_created() const { return positions_created_; }

  /// Fold-memoization telemetry: BitMat::FoldInto reports here whether a
  /// column fold was served from the version-stamped cache (hit) or had to
  /// iterate rows (miss), and when a miss published the memo through the
  /// once-flag (once). Counters are cumulative; the engine snapshots them
  /// around a query to derive per-query deltas for QueryStats.
  void CountFoldHit() { ++fold_cache_hits_; }
  void CountFoldMiss() { ++fold_cache_misses_; }
  void CountFoldOnce() { ++fold_once_publishes_; }
  uint64_t fold_cache_hits() const { return fold_cache_hits_; }
  uint64_t fold_cache_misses() const { return fold_cache_misses_; }
  uint64_t fold_once_publishes() const { return fold_once_publishes_; }

  /// Folds another arena's counter deltas into this one. Used by the wave
  /// executor (ThreadPool::RunTaskGraph) to surface the telemetry its
  /// per-slot arenas accumulated back into the query's own arena, so
  /// per-query stats still see scheduled work. Caller supplies deltas
  /// (after - before), not absolute counts.
  void AddFoldTelemetry(uint64_t hits, uint64_t misses, uint64_t once) {
    fold_cache_hits_ += hits;
    fold_cache_misses_ += misses;
    fold_once_publishes_ += once;
  }

  /// Query lifecycle control (DESIGN.md §9). The engine attaches the
  /// per-query control for the duration of one Execute; ThreadPool mirrors
  /// the caller's control onto its worker arenas for the duration of a
  /// collective. Null (the default, and the state every bench runs in)
  /// makes every check below a single pointer test.
  void SetQueryControl(QueryControl* control) {
    control_ = control;
    check_tick_ = 0;
  }
  QueryControl* query_control() const { return control_; }

  /// The cooperative cancellation check, called at loop/block/recursion
  /// granularity on the prune/join hot paths. With a control attached the
  /// steady-state cost is one relaxed load; every 256th call additionally
  /// polls the deadline clock — the stride bounds how far past a deadline
  /// a query can run in units of hot-loop iterations, not wall time spent
  /// inside one check.
  void CheckCancel() {
    if (control_ == nullptr) return;
    if ((++check_tick_ & 0xFF) == 0) control_->PollNow();
    control_->ThrowIfAborted();
  }

  /// The forced variant for infrequent sites (per-TP load, per semi-join,
  /// per wave): always reads the clock, so coarse-grained phases observe a
  /// deadline even when they never tick the stride.
  void CheckCancelNow() {
    if (control_ == nullptr) return;
    control_->PollNow();
    control_->ThrowIfAborted();
  }

  /// Accounts approximate bytes against the attached control's budget
  /// (no-op when detached). Throws QueryAbortedError on budget breach.
  void ChargeMemory(uint64_t bytes) {
    if (control_ != nullptr) control_->ChargeMemory(bytes);
  }

 private:
  std::vector<std::unique_ptr<Bitvector>> bit_free_;
  std::vector<std::unique_ptr<std::vector<uint32_t>>> pos_free_;
  size_t bits_created_ = 0;
  size_t positions_created_ = 0;
  uint64_t fold_cache_hits_ = 0;
  uint64_t fold_cache_misses_ = 0;
  uint64_t fold_once_publishes_ = 0;
  QueryControl* control_ = nullptr;
  uint32_t check_tick_ = 0;
};

/// RAII scratch Bitvector: pooled when `ctx` is non-null, function-local
/// otherwise, so every call site works with or without an arena.
class ScratchBits {
 public:
  explicit ScratchBits(ExecContext* ctx)
      : ctx_(ctx), bv_(ctx != nullptr ? ctx->AcquireBits() : &local_) {}
  /// Acquires and presents a cleared `n`-bit vector.
  ScratchBits(ExecContext* ctx, size_t n) : ScratchBits(ctx) {
    bv_->Resize(n);
    bv_->Clear();
  }
  ~ScratchBits() {
    if (ctx_ != nullptr && bv_ != nullptr) ctx_->ReleaseBits(bv_);
  }
  ScratchBits(ScratchBits&& other) noexcept
      : ctx_(other.ctx_), local_(std::move(other.local_)) {
    bv_ = (ctx_ != nullptr) ? other.bv_ : &local_;
    other.ctx_ = nullptr;
    other.bv_ = nullptr;
  }
  ScratchBits(const ScratchBits&) = delete;
  ScratchBits& operator=(const ScratchBits&) = delete;
  ScratchBits& operator=(ScratchBits&&) = delete;

  Bitvector& operator*() { return *bv_; }
  const Bitvector& operator*() const { return *bv_; }
  Bitvector* operator->() { return bv_; }
  Bitvector* get() { return bv_; }
  const Bitvector* get() const { return bv_; }

 private:
  ExecContext* ctx_;
  Bitvector* bv_;
  Bitvector local_;
};

/// RAII scratch position buffer (sorted uint32 positions), pooled or local.
class ScratchPositions {
 public:
  explicit ScratchPositions(ExecContext* ctx)
      : ctx_(ctx), v_(ctx != nullptr ? ctx->AcquirePositions() : &local_) {}
  ~ScratchPositions() {
    if (ctx_ != nullptr && v_ != nullptr) ctx_->ReleasePositions(v_);
  }
  ScratchPositions(const ScratchPositions&) = delete;
  ScratchPositions& operator=(const ScratchPositions&) = delete;

  std::vector<uint32_t>& operator*() { return *v_; }
  std::vector<uint32_t>* operator->() { return v_; }
  std::vector<uint32_t>* get() { return v_; }

 private:
  ExecContext* ctx_;
  std::vector<uint32_t>* v_;
  std::vector<uint32_t> local_;
};

}  // namespace lbr

#endif  // LBR_UTIL_EXEC_CONTEXT_H_
