#include "util/compressed_row.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>

#include "util/bitops.h"

namespace lbr {

namespace {

// Number of runs in the RLE form of a row whose set bits are `positions`,
// given that trailing zeros are not encoded (the row is self-delimiting).
// Also reports whether the row starts with a 1-run.
size_t CountRuns(const std::vector<uint32_t>& positions, bool* first_bit) {
  if (positions.empty()) {
    *first_bit = false;
    return 0;
  }
  *first_bit = (positions[0] == 0);
  size_t runs = (positions[0] == 0) ? 1 : 2;  // leading 0-run (if any) + 1-run
  for (size_t i = 1; i < positions.size(); ++i) {
    if (positions[i] == positions[i - 1] + 1) continue;  // same 1-run
    runs += 2;  // a 0-gap and the next 1-run
  }
  return runs;
}

void BuildRuns(const std::vector<uint32_t>& positions,
               std::vector<uint32_t>* runs) {
  runs->clear();
  if (positions.empty()) return;
  if (positions[0] != 0) runs->push_back(positions[0]);  // leading 0-run
  uint32_t run_len = 1;
  for (size_t i = 1; i < positions.size(); ++i) {
    if (positions[i] == positions[i - 1] + 1) {
      ++run_len;
    } else {
      runs->push_back(run_len);                          // 1-run
      runs->push_back(positions[i] - positions[i - 1] - 1);  // 0-gap
      run_len = 1;
    }
  }
  runs->push_back(run_len);  // final 1-run; trailing zeros are implicit
}

}  // namespace

CompressedRow CompressedRow::EncodeOptimal(
    const std::vector<uint32_t>& positions, bool allow_positions) {
  CompressedRow row;
  EncodeOptimalInto(positions, allow_positions, &row);
  return row;
}

void CompressedRow::EncodeOptimalInto(const std::vector<uint32_t>& positions,
                                      bool allow_positions,
                                      CompressedRow* row) {
  assert(&positions != &row->payload_);
  row->ext_data_ = nullptr;
  row->ext_size_ = 0;
  if (positions.empty()) {
    row->encoding_ = Encoding::kEmpty;
    row->first_bit_ = false;
    row->count_ = 0;
    row->payload_.clear();
    return;
  }
  row->count_ = static_cast<uint32_t>(positions.size());
  bool first_bit = false;
  size_t run_ints = CountRuns(positions, &first_bit);
  if (allow_positions && positions.size() < run_ints) {
    row->encoding_ = Encoding::kPositions;
    row->first_bit_ = false;
    row->payload_.assign(positions.begin(), positions.end());
  } else {
    row->encoding_ = Encoding::kRuns;
    row->first_bit_ = first_bit;
    BuildRuns(positions, &row->payload_);
    // BuildRuns never emits a leading 0-run of length 0; first_bit_ tells the
    // decoder whether payload_[0] is a 1-run or a 0-run.
  }
}

CompressedRow CompressedRow::FromBitvector(const Bitvector& bits) {
  return FromPositions(bits.SetBits());
}

CompressedRow CompressedRow::FromPositions(
    const std::vector<uint32_t>& positions) {
  assert(std::is_sorted(positions.begin(), positions.end()));
  return EncodeOptimal(positions, /*allow_positions=*/true);
}

CompressedRow CompressedRow::RleOnlyFromPositions(
    const std::vector<uint32_t>& positions) {
  assert(std::is_sorted(positions.begin(), positions.end()));
  return EncodeOptimal(positions, /*allow_positions=*/false);
}

CompressedRow CompressedRow::View(Encoding encoding, bool first_bit,
                                  uint32_t count, const uint32_t* payload,
                                  uint32_t payload_words) {
  CompressedRow row;
  row.encoding_ = encoding;
  row.first_bit_ = first_bit;
  row.count_ = count;
  if (encoding == Encoding::kEmpty || payload_words == 0) {
    row.encoding_ = count == 0 ? Encoding::kEmpty : encoding;
    return row;
  }
  row.ext_data_ = payload;
  row.ext_size_ = payload_words;
  return row;
}

bool CompressedRow::Test(uint32_t pos) const {
  const uint32_t* pd = pdata();
  const size_t pn = psize();
  switch (encoding_) {
    case Encoding::kEmpty:
      return false;
    case Encoding::kPositions:
      return std::binary_search(pd, pd + pn, pos);
    case Encoding::kRuns: {
      uint32_t cur = 0;
      bool bit = first_bit_;
      for (size_t r = 0; r < pn; ++r) {
        uint32_t run = pd[r];
        if (pos < cur + run) return bit;
        cur += run;
        bit = !bit;
      }
      return false;  // trailing zeros
    }
  }
  return false;
}

void CompressedRow::OrInto(Bitvector* out) const {
  const uint32_t* pd = pdata();
  const size_t pn = psize();
  switch (encoding_) {
    case Encoding::kEmpty:
      return;
    case Encoding::kPositions:
      for (size_t i = 0; i < pn; ++i) out->Set(pd[i]);
      return;
    case Encoding::kRuns: {
      // Runs decode directly into whole words: a 1-run of length L costs
      // O(L/64), not L bit writes.
      uint64_t pos = 0;
      bool bit = first_bit_;
      for (size_t r = 0; r < pn; ++r) {
        uint32_t run = pd[r];
        if (bit) out->SetRange(pos, pos + run);
        pos += run;
        bit = !bit;
      }
      return;
    }
  }
}

void CompressedRow::AppendMaskedPositions(const Bitvector& mask,
                                          std::vector<uint32_t>* out) const {
  const uint32_t* pd = pdata();
  const size_t pn = psize();
  switch (encoding_) {
    case Encoding::kEmpty:
      return;
    case Encoding::kPositions:
      for (size_t i = 0; i < pn; ++i) {
        uint32_t p = pd[i];
        if (p < mask.size() && mask.Get(p)) out->push_back(p);
      }
      return;
    case Encoding::kRuns: {
      const uint64_t* words = mask.words().data();
      uint64_t pos = 0;
      bool bit = first_bit_;
      for (size_t r = 0; r < pn; ++r) {
        uint32_t run = pd[r];
        if (bit) {
          uint64_t end = std::min<uint64_t>(pos + run, mask.size());
          if (pos < end) bitops::AppendSetBitsInRange(words, pos, end, out);
        }
        pos += run;
        bit = !bit;
        if (pos >= mask.size()) return;  // everything further is dropped
      }
      return;
    }
  }
}

CompressedRow CompressedRow::AndWith(const Bitvector& mask) const {
  std::vector<uint32_t> kept;
  kept.reserve(count_);
  AppendMaskedPositions(mask, &kept);
  return FromPositions(kept);
}

void CompressedRow::AndWithInPlace(const Bitvector& mask,
                                   std::vector<uint32_t>* scratch) {
  std::vector<uint32_t> local;
  std::vector<uint32_t>* kept = scratch != nullptr ? scratch : &local;
  kept->clear();
  AppendMaskedPositions(mask, kept);
  if (kept->size() == count_) return;  // no bit dropped; encoding unchanged
  EncodeOptimalInto(*kept, /*allow_positions=*/true, this);
}

bool CompressedRow::IntersectsWith(const Bitvector& mask) const {
  const uint32_t* pd = pdata();
  const size_t pn = psize();
  switch (encoding_) {
    case Encoding::kEmpty:
      return false;
    case Encoding::kPositions: {
      for (size_t i = 0; i < pn; ++i) {
        uint32_t p = pd[i];
        if (p < mask.size() && mask.Get(p)) return true;
      }
      return false;
    }
    case Encoding::kRuns: {
      const uint64_t* words = mask.words().data();
      uint64_t pos = 0;
      bool bit = first_bit_;
      for (size_t r = 0; r < pn; ++r) {
        uint32_t run = pd[r];
        if (bit) {
          uint64_t end = std::min<uint64_t>(pos + run, mask.size());
          if (pos < end && bitops::AnyInRange(words, pos, end)) return true;
        }
        pos += run;
        bit = !bit;
        if (pos >= mask.size()) return false;
      }
      return false;
    }
  }
  return false;
}

void CompressedRow::IntersectSortedPositions(
    std::vector<uint32_t>* positions) const {
  switch (encoding_) {
    case Encoding::kEmpty:
      positions->clear();
      return;
    case Encoding::kPositions: {
      // In-place sorted intersection through the dispatched kernel; the
      // output cursor never passes the read cursor, so out == a is safe.
      size_t kept = bitops::IntersectSortedU32(
          positions->data(), positions->size(), pdata(), psize(),
          positions->data());
      positions->resize(kept);
      return;
    }
    case Encoding::kRuns: {
      const uint32_t* pd = pdata();
      const size_t pn = psize();
      size_t kept = 0, ri = 0;
      uint64_t run_end = pn == 0 ? 0 : pd[0];
      bool bit = first_bit_;
      for (uint32_t p : *positions) {
        while (ri < pn && run_end <= p) {
          ++ri;
          bit = !bit;
          if (ri < pn) run_end += pd[ri];
        }
        if (ri == pn) break;  // implicit trailing zeros
        if (bit) (*positions)[kept++] = p;
      }
      positions->resize(kept);
      return;
    }
  }
}

bool CompressedRow::IsSubsetOf(const Bitvector& mask) const {
  switch (encoding_) {
    case Encoding::kEmpty:
      return true;
    case Encoding::kPositions: {
      const uint32_t* pd = pdata();
      const size_t pn = psize();
      for (size_t i = 0; i < pn; ++i) {
        uint32_t p = pd[i];
        if (p >= mask.size() || !mask.Get(p)) return false;
      }
      return true;
    }
    case Encoding::kRuns: {
      const uint32_t* pd = pdata();
      const size_t pn = psize();
      const uint64_t* words = mask.words().data();
      uint64_t pos = 0;
      bool bit = first_bit_;
      for (size_t r = 0; r < pn; ++r) {
        uint32_t run = pd[r];
        if (bit) {
          if (pos + run > mask.size()) return false;  // bits past the mask
          if (!bitops::AllInRange(words, pos, pos + run)) return false;
        }
        pos += run;
        bit = !bit;
      }
      return true;
    }
  }
  return true;
}

void CompressedRow::AppendSetBits(std::vector<uint32_t>* out) const {
  ForEachSetBit([out](uint32_t p) { out->push_back(p); });
}

std::vector<uint32_t> CompressedRow::SetBits() const {
  std::vector<uint32_t> out;
  out.reserve(count_);
  AppendSetBits(&out);
  return out;
}

bool CompressedRow::operator==(const CompressedRow& other) const {
  // Canonical encodings: equal rows encode identically. Compared through
  // the payload span so views and owned rows with the same content match.
  return encoding_ == other.encoding_ && first_bit_ == other.first_bit_ &&
         count_ == other.count_ && psize() == other.psize() &&
         std::equal(pdata(), pdata() + psize(), other.pdata());
}

void CompressedRow::WriteTo(std::ostream* out) const {
  uint8_t tag = static_cast<uint8_t>(encoding_);
  uint8_t fb = first_bit_ ? 1 : 0;
  uint32_t n = static_cast<uint32_t>(psize());
  out->write(reinterpret_cast<const char*>(&tag), 1);
  out->write(reinterpret_cast<const char*>(&fb), 1);
  out->write(reinterpret_cast<const char*>(&count_), sizeof(count_));
  out->write(reinterpret_cast<const char*>(&n), sizeof(n));
  if (n > 0) {
    out->write(reinterpret_cast<const char*>(pdata()), n * sizeof(uint32_t));
  }
}

CompressedRow CompressedRow::ReadFrom(std::istream* in) {
  CompressedRow row;
  uint8_t tag = 0, fb = 0;
  uint32_t n = 0;
  in->read(reinterpret_cast<char*>(&tag), 1);
  in->read(reinterpret_cast<char*>(&fb), 1);
  in->read(reinterpret_cast<char*>(&row.count_), sizeof(row.count_));
  in->read(reinterpret_cast<char*>(&n), sizeof(n));
  row.encoding_ = static_cast<Encoding>(tag);
  row.first_bit_ = (fb != 0);
  row.payload_.resize(n);
  if (n > 0) {
    in->read(reinterpret_cast<char*>(row.payload_.data()),
             n * sizeof(uint32_t));
  }
  return row;
}

}  // namespace lbr
