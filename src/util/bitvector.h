#ifndef LBR_UTIL_BITVECTOR_H_
#define LBR_UTIL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lbr {

/// A dynamically sized, uncompressed bit vector.
///
/// Bitvector is the workhorse behind `fold` results and `unfold` masks
/// (Section 4 of the paper): a fold projects one dimension of a BitMat into
/// a Bitvector, and an unfold uses a Bitvector as the MaskBitArray.
///
/// Words are 64-bit; bit `i` lives at word `i / 64`, position `i % 64`
/// (LSB first). All bits past `size()` are kept zero as an invariant so that
/// whole-word operations (AND/OR/popcount) never see stray bits.
class Bitvector {
 public:
  Bitvector() = default;
  /// Creates a vector of `n` bits, all initialized to `value`.
  explicit Bitvector(size_t n, bool value = false);

  /// Number of bits.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns bit `i`. Precondition: `i < size()`.
  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  /// Sets bit `i` to `v`. Precondition: `i < size()`.
  void Set(size_t i, bool v = true) {
    if (v) {
      words_[i >> 6] |= uint64_t{1} << (i & 63);
    } else {
      words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
    }
  }

  /// Resizes to `n` bits; new bits are zero.
  void Resize(size_t n);
  /// Sets every bit to zero (size unchanged).
  void Clear();
  /// Sets every bit to one (size unchanged).
  void Fill();

  /// Sets every bit in [begin, end); the range is clamped to size(). A run
  /// of length L costs O(L/64) words, not O(L) bit writes.
  void SetRange(size_t begin, size_t end);

  /// Clears every bit in [begin, end); the range is clamped to size().
  void ClearRange(size_t begin, size_t end);

  /// Number of set bits.
  size_t Count() const;
  /// True iff no bit is set.
  bool None() const;
  /// True iff every bit is set.
  bool All() const;

  /// Index of the first set bit, or `size()` if none.
  size_t FindFirst() const;
  /// Index of the first set bit at position > `i`, or `size()` if none.
  size_t FindNext(size_t i) const;

  /// In-place intersection with `other`. Sizes must match.
  void And(const Bitvector& other);
  /// In-place union with `other`. Sizes must match.
  void Or(const Bitvector& other);
  /// In-place difference: clears every bit set in `other`. Sizes must match.
  void AndNot(const Bitvector& other);
  /// Flips every bit.
  void Not();

  /// Clears all bits at positions >= `n` (used for domain truncation when
  /// intersecting a subject-dimension fold with an object-dimension fold;
  /// see Appendix D and DESIGN.md on the shared S/O ID space).
  void TruncateBitsFrom(size_t n);

  /// Returns a copy resized to `n` bits: the common prefix is copied
  /// word-wise; new bits are zero, excess bits dropped.
  Bitvector Resized(size_t n) const;

  /// In-place form of `src.Resized(n)` into `*this`, reusing this vector's
  /// word capacity (no allocation once warmed up). `&src` must not be this.
  void AssignResized(const Bitvector& src, size_t n);

  /// Appends the indexes of all set bits to `*out`.
  void AppendSetBits(std::vector<uint32_t>* out) const;
  /// Appends the indexes of the bits set in both `this` and `other` to
  /// `*out`, ascending, without materializing the intersection. Operates on
  /// the common word prefix (zero-tail makes trailing words contribute
  /// nothing), so sizes need not match.
  void AppendAndSetBits(const Bitvector& other,
                        std::vector<uint32_t>* out) const;
  /// Returns the indexes of all set bits.
  std::vector<uint32_t> SetBits() const;

  bool operator==(const Bitvector& other) const;
  bool operator!=(const Bitvector& other) const { return !(*this == other); }

  /// Calls `fn(i)` for every set bit `i`, in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        unsigned tz = __builtin_ctzll(word);
        fn(static_cast<uint32_t>((w << 6) + tz));
        word &= word - 1;
      }
    }
  }

  /// Raw word access (read-only), for serialization and fast bulk ops.
  const std::vector<uint64_t>& words() const { return words_; }

  /// Bulk deserialization: adopts `nwords` raw words as an `nbits`-wide
  /// vector (missing words read as zero, excess tail bits are cleared to
  /// keep the zero-tail invariant).
  void AssignWords(const uint64_t* words, size_t nwords, size_t nbits);

 private:
  // Zeroes any bits in the last word beyond size_.
  void ZeroTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace lbr

#endif  // LBR_UTIL_BITVECTOR_H_
