#ifndef LBR_UTIL_MAPPED_FILE_H_
#define LBR_UTIL_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace lbr {

/// A read-only memory-mapped file (the substrate of the snapshot tier,
/// DESIGN.md §11). The mapping lives for the lifetime of the object;
/// consumers that hand out pointers into the map (CompressedRow views over
/// snapshot extents) keep the file alive through a shared_ptr.
///
/// Advise() forwards madvise hints so the snapshot layer can implement
/// planner-driven readahead (kWillNeed before a predicate's extents are
/// probed) and cold-predicate spill (kDontNeed drops the page-cache
/// residency of a spilled slice; the pages fault back in from disk on the
/// next touch — the data itself is never lost).
class MappedFile {
 public:
  enum class Advice { kNormal, kSequential, kRandom, kWillNeed, kDontNeed };

  /// Maps `path` read-only. Throws std::runtime_error (with errno detail)
  /// when the file cannot be opened, stat'ed, or mapped. Zero-length files
  /// map to data() == nullptr, size() == 0. The descriptor is retained for
  /// the object's lifetime so ReadAt can pread past the mapping (the
  /// LBR_SNAPSHOT_PARANOID read path, DESIGN.md §12). Fault site:
  /// mapped_file.map.
  static std::shared_ptr<MappedFile> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// System page size the mapping is aligned to.
  static uint64_t PageSize();

  /// madvise hint over [offset, offset + length); the range is clamped to
  /// the file and expanded outward to page boundaries. Best-effort: advice
  /// failures are ignored (they are hints, not correctness), and the
  /// mapped_file.advise fault site drops the hint the same way.
  void Advise(uint64_t offset, uint64_t length, Advice advice) const;

  /// pread `length` bytes at `offset` into `dst`, bypassing the mapping —
  /// unreliable storage faults surface here as a clean error instead of a
  /// SIGBUS on a mapped access. Throws std::runtime_error (with errno
  /// detail) on I/O failure or short read past EOF.
  void ReadAt(uint64_t offset, uint64_t length, void* dst) const;

 private:
  MappedFile() = default;

  const uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  int fd_ = -1;
  std::string path_;
};

}  // namespace lbr

#endif  // LBR_UTIL_MAPPED_FILE_H_
