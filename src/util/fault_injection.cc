#include "util/fault_injection.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/rng.h"

namespace lbr {

namespace {

// Order must match FaultSiteId.
constexpr FaultSiteInfo kSites[FaultRegistry::kNumSites] = {
    {"tp_cache.load", /*transient=*/true, /*chaos_safe=*/true},
    {"tp_loader.load", true, true},
    {"index.materialize", true, true},
    {"index.checksum", false, false},
    {"mapped_file.map", false, false},
    {"mapped_file.advise", false, true},  // absorbed: hints are best-effort
    {"thread_pool.dispatch", true, true},
    {"query_control.charge", false, false},
    {"snapshot.open", false, false},
    {"snapshot.write.create", false, false},
    {"snapshot.write.write", false, false},
    {"snapshot.write.fsync", false, false},
    {"snapshot.write.rename", false, false},
    {"snapshot.write.dirsync", false, false},
};

// SplitMix64: a stateless mix of (seed, site, seq) for the rate trigger, so
// firing is a pure function of the crossing coordinates — no shared RNG
// state to race on.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void WarnSpec(const std::string& entry, const std::string& why) {
  std::fprintf(stderr, "[lbr] LBR_FAULT: rejecting entry '%s': %s\n",
               entry.c_str(), why.c_str());
}

// Strict positive-integer parse into [1, cap]; rejects empty, sign, junk
// suffixes, and overflow.
bool ParseUint(const std::string& text, uint64_t cap, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t v = 0;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    if (v > cap / 10) return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
    if (v > cap) return false;
  }
  if (v == 0) return false;
  *out = v;
  return true;
}

}  // namespace

FaultRegistry::FaultRegistry() : seed_(0x9E3779B97F4A7C15ull) {
  if (const char* seed_env = std::getenv("LBR_FAULT_SEED")) {
    uint64_t seed = 0;
    if (ParseUint(seed_env, ~uint64_t{0}, &seed)) {
      seed_.store(seed, std::memory_order_relaxed);
    } else {
      std::fprintf(stderr,
                   "[lbr] LBR_FAULT_SEED: '%s' is not a positive integer "
                   "(ignored)\n",
                   seed_env);
    }
  }
  if (const char* spec = std::getenv("LBR_FAULT")) {
    // The legacy bare-integer form is TpCache's (per-instance, validated
    // there); everything else is the site:spec syntax.
    if (LooksLikeSiteSpec(spec)) ArmFromString(spec);
  }
}

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* registry = new FaultRegistry();  // never destroyed
  return *registry;
}

const FaultSiteInfo& FaultRegistry::InfoOf(FaultSiteId id) {
  return kSites[static_cast<uint32_t>(id)];
}

FaultSiteId FaultRegistry::SiteByName(const std::string& name) {
  for (uint32_t i = 0; i < kNumSites; ++i) {
    if (name == kSites[i].name) return static_cast<FaultSiteId>(i);
  }
  return FaultSiteId::kNumSites;
}

bool FaultRegistry::ParseLegacyRate(const char* text, uint32_t* rate) {
  if (text == nullptr) return false;
  uint64_t v = 0;
  if (!ParseUint(text, 0xFFFFFFFFull, &v)) return false;
  *rate = static_cast<uint32_t>(v);
  return true;
}

bool FaultRegistry::LooksLikeSiteSpec(const char* text) {
  if (text == nullptr) return false;
  for (const char* p = text; *p != '\0'; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) return true;
  }
  return false;
}

bool FaultRegistry::ParseSpec(const std::string& spec, Mode* mode,
                              uint64_t* param, std::string* error) const {
  std::string name = spec;
  std::string value;
  size_t eq = spec.find('=');
  if (eq != std::string::npos) {
    name = spec.substr(0, eq);
    value = spec.substr(eq + 1);
  }
  if (name == "nth" || name == "once") {
    *mode = name == "nth" ? kNth : kOnce;
    if (eq == std::string::npos && name == "once") {
      *param = 1;  // bare "once" = fire on the first crossing
      return true;
    }
    if (!ParseUint(value, 0xFFFFFFFFull, param)) {
      if (error != nullptr) {
        *error = "'" + name + "' needs an integer in [1, 2^32), got '" +
                 value + "'";
      }
      return false;
    }
    return true;
  }
  if (name == "rate") {
    char* end = nullptr;
    double p = value.empty() ? -1.0 : std::strtod(value.c_str(), &end);
    if (value.empty() || end == nullptr || *end != '\0' || !(p > 0.0) ||
        p > 1.0) {
      if (error != nullptr) {
        *error = "'rate' needs a probability in (0, 1], got '" + value + "'";
      }
      return false;
    }
    // Threshold in 64-bit space; rate=1 must always fire.
    *param = p >= 1.0 ? ~uint64_t{0}
                      : static_cast<uint64_t>(
                            p * 18446744073709551616.0 /* 2^64 */);
    *mode = kRate;
    return true;
  }
  if (error != nullptr) {
    *error = "unknown trigger '" + name + "' (want nth=K, once[=K], rate=P)";
  }
  return false;
}

bool FaultRegistry::ArmOne(FaultSiteId id, Mode mode, uint64_t param) {
  Site& s = sites_[static_cast<uint32_t>(id)];
  uint32_t prev = s.mode.exchange(kOff, std::memory_order_relaxed);
  s.param.store(param, std::memory_order_relaxed);
  s.seq.store(0, std::memory_order_relaxed);
  s.mode.store(mode, std::memory_order_relaxed);
  if (prev == kOff && mode != kOff) {
    armed_sites_.fetch_add(1, std::memory_order_relaxed);
  } else if (prev != kOff && mode == kOff) {
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

bool FaultRegistry::Arm(const std::string& site, const std::string& spec,
                        std::string* error) {
  Mode mode = kOff;
  uint64_t param = 0;
  if (!ParseSpec(spec, &mode, &param, error)) return false;
  std::lock_guard<std::mutex> lk(arm_mu_);
  if (site == "*" || site == "all") {
    bool everything = site == "all";
    for (uint32_t i = 0; i < kNumSites; ++i) {
      if (everything || kSites[i].chaos_safe) {
        ArmOne(static_cast<FaultSiteId>(i), mode, param);
      }
    }
    return true;
  }
  FaultSiteId id = SiteByName(site);
  if (id == FaultSiteId::kNumSites) {
    if (error != nullptr) *error = "unknown fault site '" + site + "'";
    return false;
  }
  return ArmOne(id, mode, param);
}

int FaultRegistry::ArmFromString(const std::string& specs) {
  int armed = 0;
  size_t pos = 0;
  while (pos <= specs.size()) {
    size_t comma = specs.find(',', pos);
    if (comma == std::string::npos) comma = specs.size();
    std::string entry = specs.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      WarnSpec(entry, "missing ':' (want site:spec)");
      continue;
    }
    std::string error;
    if (Arm(entry.substr(0, colon), entry.substr(colon + 1), &error)) {
      ++armed;
    } else {
      WarnSpec(entry, error);
    }
  }
  return armed;
}

void FaultRegistry::Disarm(FaultSiteId id) {
  std::lock_guard<std::mutex> lk(arm_mu_);
  ArmOne(id, kOff, 0);
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lk(arm_mu_);
  for (uint32_t i = 0; i < kNumSites; ++i) {
    ArmOne(static_cast<FaultSiteId>(i), kOff, 0);
  }
}

void FaultRegistry::ResetCounters() {
  std::lock_guard<std::mutex> lk(arm_mu_);
  for (Site& s : sites_) {
    s.seq.store(0, std::memory_order_relaxed);
    s.hits.store(0, std::memory_order_relaxed);
    s.injected.store(0, std::memory_order_relaxed);
  }
  injected_total_.store(0, std::memory_order_relaxed);
  retries_total_.store(0, std::memory_order_relaxed);
}

void FaultRegistry::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lk(arm_mu_);
  seed_.store(seed, std::memory_order_relaxed);
  for (Site& s : sites_) s.seq.store(0, std::memory_order_relaxed);
}

bool FaultRegistry::Fires(Site& s, FaultSiteId id) {
  uint32_t mode = s.mode.load(std::memory_order_relaxed);
  if (mode == kOff) return false;
  uint64_t seq = s.seq.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t param = s.param.load(std::memory_order_relaxed);
  switch (mode) {
    case kNth:
      return param != 0 && seq % param == 0;
    case kOnce:
      if (seq == param) {
        // One-shot: disarm so later crossings (and retries) survive. The
        // armed-site count is corrected lazily under the arm mutex; the
        // fast path only needs "nonzero while anything might fire".
        if (s.mode.exchange(kOff, std::memory_order_relaxed) != kOff) {
          armed_sites_.fetch_sub(1, std::memory_order_relaxed);
        }
        return true;
      }
      return false;
    case kRate:
      return Mix64(seed_.load(std::memory_order_relaxed) ^
                   (static_cast<uint64_t>(id) << 48) ^ seq) < param;
    default:
      return false;
  }
}

bool FaultRegistry::ShouldInject(FaultSiteId id) {
  if (!armed_anywhere()) return false;
  Site& s = sites_[static_cast<uint32_t>(id)];
  s.hits.fetch_add(1, std::memory_order_relaxed);
  if (!Fires(s, id)) return false;
  s.injected.fetch_add(1, std::memory_order_relaxed);
  injected_total_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultRegistry::MaybeInject(FaultSiteId id) {
  if (!ShouldInject(id)) return;
  const FaultSiteInfo& info = InfoOf(id);
  throw FaultInjectedError(id, info.name, info.transient);
}

uint64_t FaultRegistry::hits(FaultSiteId id) const {
  return sites_[static_cast<uint32_t>(id)].hits.load(
      std::memory_order_relaxed);
}

uint64_t FaultRegistry::injected(FaultSiteId id) const {
  return sites_[static_cast<uint32_t>(id)].injected.load(
      std::memory_order_relaxed);
}

uint64_t FaultRegistry::survived(FaultSiteId id) const {
  return hits(id) - injected(id);
}

std::vector<FaultSiteStats> FaultRegistry::Stats() const {
  std::vector<FaultSiteStats> out;
  out.reserve(kNumSites);
  for (uint32_t i = 0; i < kNumSites; ++i) {
    const Site& s = sites_[i];
    FaultSiteStats st;
    st.name = kSites[i].name;
    st.id = static_cast<FaultSiteId>(i);
    st.hits = s.hits.load(std::memory_order_relaxed);
    st.injected = s.injected.load(std::memory_order_relaxed);
    st.survived = st.hits - st.injected;
    uint32_t mode = s.mode.load(std::memory_order_relaxed);
    uint64_t param = s.param.load(std::memory_order_relaxed);
    switch (mode) {
      case kNth:
        st.spec = "nth=" + std::to_string(param);
        break;
      case kOnce:
        st.spec = "once=" + std::to_string(param);
        break;
      case kRate:
        st.spec = "rate~" + std::to_string(static_cast<double>(param) /
                                           18446744073709551616.0);
        break;
      default:
        break;
    }
    out.push_back(std::move(st));
  }
  return out;
}

void FaultBackoffSleep(int attempt, const RetryPolicy& policy,
                       FaultSiteId site) {
  // Exponential base doubling per attempt, capped; jitter in [0.5, 1.0) of
  // the step, deterministic per (site, attempt) so recovery latency is
  // reproducible.
  uint64_t step = policy.base_delay_us;
  for (int i = 1; i < attempt && step < policy.max_delay_us; ++i) step *= 2;
  if (step > policy.max_delay_us) step = policy.max_delay_us;
  Rng rng((static_cast<uint64_t>(site) << 8) ^
          static_cast<uint64_t>(attempt) ^ 0xFA017EC7ull);
  uint64_t delay_us = step / 2 + rng.Uniform(step / 2 + 1);
  std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
}

}  // namespace lbr
