#include "util/bitops_internal.h"

// AVX2 kernel backend. This TU is the only one compiled with -mavx2 (CMake
// sets the flag per source file), so no AVX2 instruction can leak into code
// that runs before dispatch: Avx2Table() itself checks CPUID and returns
// nullptr on hardware without AVX2, and everything vectorized lives behind
// the returned function pointers.
//
// All loads/stores are unaligned (vmovdqu); no path reads past the caller's
// word count, so the zero-tail invariant holds exactly as in the scalar
// kernels. Partial head/tail words of range kernels are handled scalar —
// the vector body only ever sees whole words.

#if defined(__AVX2__)

#include <immintrin.h>

namespace lbr {
namespace bitops {
namespace {

using detail::SpanMask;

void AndWordsAvx2(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        _mm256_and_si256(a1, b1));
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a, b));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void OrWordsAvx2(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        _mm256_or_si256(a1, b1));
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void AndNotWordsAvx2(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // andnot computes ~first & second, so src goes first.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(b, a));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

/// Per-byte popcount of `v` via the classic nibble lookup, summed into four
/// 64-bit lanes by SAD against zero.
inline __m256i Popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

uint64_t PopcountWordsAvx2(const uint64_t* w, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  uint64_t c = static_cast<uint64_t>(_mm256_extract_epi64(acc, 0)) +
               static_cast<uint64_t>(_mm256_extract_epi64(acc, 1)) +
               static_cast<uint64_t>(_mm256_extract_epi64(acc, 2)) +
               static_cast<uint64_t>(_mm256_extract_epi64(acc, 3));
  for (; i < n; ++i) {
    c += static_cast<uint64_t>(__builtin_popcountll(w[i]));
  }
  return c;
}

uint64_t PopcountRangeAvx2(const uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return 0;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    return static_cast<uint64_t>(__builtin_popcountll(
        w[first] & SpanMask(begin & 63, ((end - 1) & 63) + 1)));
  }
  uint64_t c = static_cast<uint64_t>(
      __builtin_popcountll(w[first] & SpanMask(begin & 63, 64)));
  c += PopcountWordsAvx2(w + first + 1, last - first - 1);
  c += static_cast<uint64_t>(
      __builtin_popcountll(w[last] & SpanMask(0, ((end - 1) & 63) + 1)));
  return c;
}

void SetBitRangeAvx2(uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    w[first] |= SpanMask(begin & 63, ((end - 1) & 63) + 1);
    return;
  }
  w[first] |= SpanMask(begin & 63, 64);
  size_t i = first + 1;
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (; i + 4 <= last; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i), ones);
  }
  for (; i < last; ++i) w[i] = ~uint64_t{0};
  w[last] |= SpanMask(0, ((end - 1) & 63) + 1);
}

bool AnyInRangeAvx2(const uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return false;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    return (w[first] & SpanMask(begin & 63, ((end - 1) & 63) + 1)) != 0;
  }
  if ((w[first] & SpanMask(begin & 63, 64)) != 0) return true;
  size_t i = first + 1;
  for (; i + 4 <= last; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (!_mm256_testz_si256(v, v)) return true;
  }
  for (; i < last; ++i) {
    if (w[i] != 0) return true;
  }
  return (w[last] & SpanMask(0, ((end - 1) & 63) + 1)) != 0;
}

bool AllInRangeAvx2(const uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return true;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    uint64_t span = SpanMask(begin & 63, ((end - 1) & 63) + 1);
    return (w[first] & span) == span;
  }
  uint64_t head = SpanMask(begin & 63, 64);
  if ((w[first] & head) != head) return false;
  size_t i = first + 1;
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (; i + 4 <= last; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    // testc: true iff ~v & ones == 0, i.e. every bit of the block is set.
    if (!_mm256_testc_si256(v, ones)) return false;
  }
  for (; i < last; ++i) {
    if (w[i] != ~uint64_t{0}) return false;
  }
  uint64_t tail = SpanMask(0, ((end - 1) & 63) + 1);
  return (w[last] & tail) == tail;
}

/// Extracts the set bits of one word into *out. Shared tail of the three
/// append kernels.
inline void ExtractWord(uint64_t word, uint32_t word_base,
                        std::vector<uint32_t>* out) {
  while (word != 0) {
    out->push_back(word_base + static_cast<uint32_t>(__builtin_ctzll(word)));
    word &= word - 1;
  }
}

void AppendSetBitsAvx2(const uint64_t* w, size_t n, uint32_t base,
                       std::vector<uint32_t>* out) {
  size_t i = 0;
  // Blocks whose 256-bit OR is zero cost one load+test — the common case on
  // sparse fold masks and candidate rows.
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (_mm256_testz_si256(v, v)) continue;
    for (size_t k = i; k < i + 4; ++k) {
      ExtractWord(w[k], base + static_cast<uint32_t>(k << 6), out);
    }
  }
  for (; i < n; ++i) {
    ExtractWord(w[i], base + static_cast<uint32_t>(i << 6), out);
  }
}

void AppendSetBitsInRangeAvx2(const uint64_t* w, size_t begin, size_t end,
                              std::vector<uint32_t>* out) {
  if (begin >= end) return;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    ExtractWord(w[first] & SpanMask(begin & 63, ((end - 1) & 63) + 1),
                static_cast<uint32_t>(first << 6), out);
    return;
  }
  ExtractWord(w[first] & SpanMask(begin & 63, 64),
              static_cast<uint32_t>(first << 6), out);
  size_t i = first + 1;
  for (; i + 4 <= last; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (_mm256_testz_si256(v, v)) continue;
    for (size_t k = i; k < i + 4; ++k) {
      ExtractWord(w[k], static_cast<uint32_t>(k << 6), out);
    }
  }
  for (; i < last; ++i) {
    ExtractWord(w[i], static_cast<uint32_t>(i << 6), out);
  }
  ExtractWord(w[last] & SpanMask(0, ((end - 1) & 63) + 1),
              static_cast<uint32_t>(last << 6), out);
}

void AppendAndSetBitsAvx2(const uint64_t* a, const uint64_t* b, size_t n,
                          std::vector<uint32_t>* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // testz on (va, vb) computes va & vb == 0 directly — no AND needed for
    // the (dominant) disjoint blocks.
    if (_mm256_testz_si256(va, vb)) continue;
    for (size_t k = i; k < i + 4; ++k) {
      ExtractWord(a[k] & b[k], static_cast<uint32_t>(k << 6), out);
    }
  }
  for (; i < n; ++i) {
    ExtractWord(a[i] & b[i], static_cast<uint32_t>(i << 6), out);
  }
}

/// Byte-shuffle patterns compacting the selected 32-bit lanes of an __m128i
/// to the front, one per 4-bit lane mask.
struct ShuffleTable {
  alignas(16) uint8_t b[16][16];
};

constexpr ShuffleTable MakeShuffleTable() {
  ShuffleTable t{};
  for (int m = 0; m < 16; ++m) {
    int out = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((m & (1 << lane)) == 0) continue;
      for (int byte = 0; byte < 4; ++byte) {
        t.b[m][out * 4 + byte] = static_cast<uint8_t>(lane * 4 + byte);
      }
      ++out;
    }
    for (; out < 4; ++out) {
      for (int byte = 0; byte < 4; ++byte) {
        t.b[m][out * 4 + byte] = 0x80;  // zero the unused lanes
      }
    }
  }
  return t;
}

constexpr ShuffleTable kShuffleTable = MakeShuffleTable();

/// Block-of-4 sorted-set intersection (the cyclic-shuffle scheme of the
/// SIMD set-intersection literature): compare each 4-lane block of `a`
/// against the four rotations of `b`'s block, accumulate the match mask of
/// the live `a` block across b-side advances, and compact it with one
/// shuffle when the block retires. Inputs are duplicate-free, so a lane
/// matches at most one rotation and the compaction stays duplicate-free
/// and sorted. Compacting only at retirement keeps `kept <= i` at every
/// store, so the 4-lane store's scribble lanes never reach past the block
/// being retired — the invariant that makes `out == a` safe.
size_t IntersectSortedU32Simd(const uint32_t* a, size_t na, const uint32_t* b,
                              size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, kept = 0;
  unsigned pending = 0;  // match mask of the live a block, not yet stored
  if (na >= 4 && nb >= 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    while (true) {
      __m128i cmp = _mm_cmpeq_epi32(va, vb);
      __m128i rot1 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
      __m128i rot2 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
      __m128i rot3 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3));
      cmp = _mm_or_si128(cmp, _mm_cmpeq_epi32(va, rot1));
      cmp = _mm_or_si128(
          cmp, _mm_or_si128(_mm_cmpeq_epi32(va, rot2),
                            _mm_cmpeq_epi32(va, rot3)));
      pending |= static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(cmp)));
      // Block maxima from the registers, not memory: earlier in-place
      // stores may have scribbled the retired prefix.
      uint32_t amax = static_cast<uint32_t>(_mm_extract_epi32(va, 3));
      uint32_t bmax = static_cast<uint32_t>(_mm_extract_epi32(vb, 3));
      bool advance_b = bmax <= amax;
      if (amax <= bmax) {
        if (pending != 0) {
          __m128i compacted = _mm_shuffle_epi8(
              va,
              _mm_load_si128(reinterpret_cast<const __m128i*>(
                  kShuffleTable.b[pending])));
          _mm_storeu_si128(reinterpret_cast<__m128i*>(out + kept), compacted);
          kept += static_cast<size_t>(__builtin_popcount(pending));
          pending = 0;
        }
        i += 4;
        if (i + 4 > na) break;
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (advance_b) {
        j += 4;
        if (j + 4 > nb) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  if (pending != 0) {
    // The loop exited on the b side with matches recorded for the live
    // a block. Its memory is pristine (stores stop at the last retired
    // block), so finish its four lanes in scalar: already-matched lanes
    // are emitted directly, the rest run the two-pointer search.
    for (int lane = 0; lane < 4; ++lane) {
      uint32_t av = a[i + lane];
      if ((pending >> lane) & 1u) {
        out[kept++] = av;
      } else {
        while (j < nb && b[j] < av) ++j;
        if (j < nb && b[j] == av) out[kept++] = b[j++];
      }
    }
    i += 4;
  }
  while (i < na && j < nb) {
    uint32_t av = a[i], bv = b[j];
    if (av < bv) {
      ++i;
    } else if (bv < av) {
      ++j;
    } else {
      out[kept++] = av;
      ++i;
      ++j;
    }
  }
  return kept;
}

constexpr detail::KernelTable kAvx2Table = {
    "avx2",
    &AndWordsAvx2,
    &OrWordsAvx2,
    &AndNotWordsAvx2,
    &PopcountWordsAvx2,
    &PopcountRangeAvx2,
    &SetBitRangeAvx2,
    &AnyInRangeAvx2,
    &AllInRangeAvx2,
    &AppendSetBitsAvx2,
    &AppendSetBitsInRangeAvx2,
    &AppendAndSetBitsAvx2,
    &IntersectSortedU32Simd,
};

}  // namespace

namespace detail {

const KernelTable* Avx2Table() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &kAvx2Table : nullptr;
}

}  // namespace detail

}  // namespace bitops
}  // namespace lbr

#else  // !defined(__AVX2__)

namespace lbr {
namespace bitops {
namespace detail {

const KernelTable* Avx2Table() { return nullptr; }

}  // namespace detail
}  // namespace bitops
}  // namespace lbr

#endif  // defined(__AVX2__)
