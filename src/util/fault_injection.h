#ifndef LBR_UTIL_FAULT_INJECTION_H_
#define LBR_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace lbr {

/// Deterministic fault-site registry (DESIGN.md §12).
///
/// Every I/O and resource boundary of the store declares a named *site* and
/// asks the registry on each crossing whether to simulate a failure there.
/// Sites are disarmed by default — the disarmed check is one relaxed atomic
/// load, so production traffic pays nothing (bench/ablation_faults pins
/// this). Armed, a site fires according to a trigger spec:
///
///   nth=K    fire on every K-th crossing (K >= 1; K=1 fires always)
///   once=K   fire exactly once, on the K-th crossing
///   rate=P   fire each crossing with probability P, derived
///            deterministically from (seed, site, crossing sequence) — same
///            seed, same per-site crossing order, same faults
///
/// Arming comes from the LBR_FAULT environment variable
/// (`site:spec[,site:spec...]`, parsed strictly: malformed entries are
/// rejected with a warning, never half-applied) or the programmatic Arm()
/// test API. The site name `*` arms every *chaos-safe* site (injections the
/// system must absorb: retried or degraded, with query results unchanged);
/// `all` arms every site including the permanent ones whose injections make
/// operations fail by design. `LBR_FAULT_SEED=<u64>` seeds the rate
/// trigger. The legacy bare-integer form (`LBR_FAULT=3` = fail every 3rd
/// TpCache load) is still honored, by TpCache itself (per-instance, as
/// before); the registry recognizes and skips it.
///
/// Classification (DESIGN.md §12):
///  - transient sites simulate recoverable failures (a flaky read); the
///    boundary wraps itself in RetryTransient below, so an injected fault
///    is absorbed after a bounded exponential backoff unless the spec
///    re-fires on every attempt (nth=1).
///  - permanent sites simulate hard failures (media corruption, ENOSPC);
///    the boundary routes the injection through its *real* error path, so
///    the structured error taxonomy (SnapshotError codes, errno detail) is
///    exercised end to end.
enum class FaultSiteId : uint32_t {
  kTpCacheLoad = 0,        ///< TpCache single-flight load (transient).
  kTpLoaderLoad,           ///< LoadTpBitMat materialization (transient).
  kIndexMaterialize,       ///< TripleIndex slice decode, I/O half (transient).
  kIndexChecksum,          ///< Forced slice checksum mismatch (permanent;
                           ///< exercises per-predicate quarantine).
  kMappedFileMap,          ///< MappedFile::Open mmap failure (permanent).
  kMappedFileAdvise,       ///< madvise hint dropped (absorbed; hints are
                           ///< best-effort by contract).
  kThreadPoolDispatch,     ///< Task/chunk dispatch on the pool (transient).
  kQueryControlCharge,     ///< QueryControl::ChargeMemory (permanent).
  kSnapshotOpen,           ///< SnapshotIO::Open map/read (permanent).
  kSnapshotWriteCreate,    ///< Snapshot temp-file creation (permanent).
  kSnapshotWriteWrite,     ///< Snapshot payload write (permanent).
  kSnapshotWriteFsync,     ///< Snapshot temp-file fsync (permanent).
  kSnapshotWriteRename,    ///< Atomic rename over the target (permanent).
  kSnapshotWriteDirSync,   ///< Directory fsync after rename (permanent).
  kNumSites,
};

/// Static classification of one site.
struct FaultSiteInfo {
  const char* name;  ///< Stable spec/env name, e.g. "tp_cache.load".
  bool transient;    ///< Retried with backoff at the boundary.
  bool chaos_safe;   ///< Armed by the `*` wildcard: the suite must pass
                     ///< with this site firing at a low rate.
};

/// Counter snapshot of one site (Stats()).
struct FaultSiteStats {
  const char* name = nullptr;
  FaultSiteId id = FaultSiteId::kNumSites;
  uint64_t hits = 0;      ///< Crossings while any site was armed.
  uint64_t injected = 0;  ///< Crossings that fired.
  uint64_t survived = 0;  ///< hits - injected.
  std::string spec;       ///< Armed trigger spec, empty when disarmed.
};

/// Thrown by MaybeInject at sites that surface the injection directly
/// (rather than routing it through the boundary's real error path).
/// RetryTransient absorbs transient ones; permanent ones unwind the query
/// as a structured error like any other std::runtime_error.
class FaultInjectedError : public std::runtime_error {
 public:
  FaultInjectedError(FaultSiteId site, const std::string& site_name,
                     bool transient)
      : std::runtime_error("injected fault at site " + site_name +
                           (transient ? " (transient)" : " (permanent)")),
        site_(site),
        transient_(transient) {}
  FaultSiteId site() const { return site_; }
  bool transient() const { return transient_; }

 private:
  FaultSiteId site_;
  bool transient_;
};

/// Process-global registry. All methods are thread-safe; arming/disarming
/// takes a mutex, the boundary checks are lock-free.
class FaultRegistry {
 public:
  /// The singleton; first use parses LBR_FAULT / LBR_FAULT_SEED.
  static FaultRegistry& Instance();

  static constexpr uint32_t kNumSites =
      static_cast<uint32_t>(FaultSiteId::kNumSites);
  static const FaultSiteInfo& InfoOf(FaultSiteId id);
  /// Resolves a spec/env site name; returns kNumSites when unknown.
  static FaultSiteId SiteByName(const std::string& name);

  /// Arms one site (or "*" / "all") with a trigger spec ("nth=K", "once=K",
  /// "once", "rate=P"). Returns false — leaving the site untouched — on an
  /// unknown name or malformed spec, with the reason in *error.
  bool Arm(const std::string& site, const std::string& spec,
           std::string* error = nullptr);

  /// Parses the LBR_FAULT syntax: comma-separated `site:spec` entries.
  /// Malformed entries are skipped with a warning on stderr (never
  /// half-applied); the legacy bare-integer form is recognized and left to
  /// TpCache. Returns the number of sites armed.
  int ArmFromString(const std::string& specs);

  void Disarm(FaultSiteId id);
  void DisarmAll();
  /// Zeroes every counter (hits/injected/retries) and re-arms nothing.
  void ResetCounters();
  /// Reseeds the rate trigger and resets per-site crossing sequences, so a
  /// reseeded run replays the same fault schedule.
  void SetSeed(uint64_t seed);

  /// The boundary check: counts a crossing and returns true when the armed
  /// spec fires (counting the injection). Used by sites that route the
  /// failure through their real error path (errno, SnapshotError). Free
  /// when nothing is armed anywhere.
  bool ShouldInject(FaultSiteId id);
  /// ShouldInject + throw FaultInjectedError carrying the site's
  /// classification.
  void MaybeInject(FaultSiteId id);

  uint64_t hits(FaultSiteId id) const;
  uint64_t injected(FaultSiteId id) const;
  uint64_t survived(FaultSiteId id) const;
  uint64_t injected_total() const {
    return injected_total_.load(std::memory_order_relaxed);
  }
  /// Backoff retries of transient faults (RetryTransient reports here; the
  /// engine snapshots deltas into QueryStats::fault_retries).
  uint64_t retries_total() const {
    return retries_total_.load(std::memory_order_relaxed);
  }
  void CountRetry() {
    retries_total_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Per-site counter snapshot (every registered site, armed or not).
  std::vector<FaultSiteStats> Stats() const;

  bool armed_anywhere() const {
    return armed_sites_.load(std::memory_order_relaxed) != 0;
  }

  /// Strict parse of the legacy LBR_FAULT=<n> form (the whole string must
  /// be a positive integer that fits uint32). Returns false on anything
  /// else — including the overflow/garbage strtol used to accept silently.
  static bool ParseLegacyRate(const char* text, uint32_t* rate);
  /// True when `text` looks like the site:spec syntax rather than the
  /// legacy bare integer.
  static bool LooksLikeSiteSpec(const char* text);

 private:
  FaultRegistry();

  enum Mode : uint32_t { kOff = 0, kNth = 1, kOnce = 2, kRate = 3 };

  struct Site {
    std::atomic<uint32_t> mode{kOff};
    /// kNth/kOnce: the K. kRate: the 64-bit fire threshold.
    std::atomic<uint64_t> param{0};
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> injected{0};
  };

  bool ArmOne(FaultSiteId id, Mode mode, uint64_t param);
  bool ParseSpec(const std::string& spec, Mode* mode, uint64_t* param,
                 std::string* error) const;
  bool Fires(Site& s, FaultSiteId id);

  Site sites_[kNumSites];
  std::atomic<uint32_t> armed_sites_{0};
  std::atomic<uint64_t> injected_total_{0};
  std::atomic<uint64_t> retries_total_{0};
  std::atomic<uint64_t> seed_;
  std::mutex arm_mu_;  ///< Serializes Arm/Disarm/Reset (not the checks).
};

/// Bounded exponential backoff for transient faults. Worst case with the
/// defaults: 4 attempts, ~50+100+200 µs of sleep — bounded recovery
/// latency, measured by bench/ablation_faults.
struct RetryPolicy {
  int max_attempts = 4;
  uint32_t base_delay_us = 50;
  uint32_t max_delay_us = 2000;
};

/// Sleeps the backoff for `attempt` (1-based) with deterministic jitter
/// derived from (site, attempt) via util/rng.
void FaultBackoffSleep(int attempt, const RetryPolicy& policy,
                       FaultSiteId site);

/// Runs `fn`, absorbing *transient* injected faults with bounded
/// exponential backoff: up to policy.max_attempts attempts, each retry
/// counted in the registry. Permanent injections and real errors propagate
/// immediately; exhausting the budget rethrows the last transient fault —
/// so a spec that fires on every attempt (nth=1) still surfaces, which is
/// how tests exercise the boundary's failure path.
template <typename Fn>
auto RetryTransient(Fn&& fn, const RetryPolicy& policy = {})
    -> decltype(fn()) {
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const FaultInjectedError& e) {
      if (!e.transient() || attempt >= policy.max_attempts) throw;
      FaultRegistry::Instance().CountRetry();
      FaultBackoffSleep(attempt, policy, e.site());
    }
  }
}

}  // namespace lbr

#endif  // LBR_UTIL_FAULT_INJECTION_H_
