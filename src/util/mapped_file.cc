#include "util/mapped_file.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/fault_injection.h"

namespace lbr {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what, const std::string& path) {
  throw std::runtime_error("MappedFile: " + what + " " + path + ": " +
                           std::strerror(errno));
}

}  // namespace

std::shared_ptr<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) ThrowErrno("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    ThrowErrno("cannot stat", path);
  }
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->path_ = path;
  file->size_ = static_cast<uint64_t>(st.st_size);
  if (file->size_ > 0) {
    void* addr = nullptr;
    if (FaultRegistry::Instance().ShouldInject(FaultSiteId::kMappedFileMap)) {
      errno = EIO;  // simulate mmap failing on unreliable storage
      addr = MAP_FAILED;
    } else {
      addr = ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    }
    if (addr == MAP_FAILED) {
      ::close(fd);
      ThrowErrno("cannot mmap", path);
    }
    file->data_ = static_cast<const uint8_t*>(addr);
  }
  // The descriptor is retained for ReadAt (paranoid pread path); the
  // mapping itself no longer needs it.
  file->fd_ = fd;
  return file;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

void MappedFile::ReadAt(uint64_t offset, uint64_t length, void* dst) const {
  uint8_t* out = static_cast<uint8_t*>(dst);
  while (length > 0) {
    ssize_t n = ::pread(fd_, out, length, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("cannot pread", path_);
    }
    if (n == 0) {
      errno = EIO;
      ThrowErrno("short pread past EOF in", path_);
    }
    out += n;
    offset += static_cast<uint64_t>(n);
    length -= static_cast<uint64_t>(n);
  }
}

uint64_t MappedFile::PageSize() {
  long ps = ::sysconf(_SC_PAGESIZE);
  return ps > 0 ? static_cast<uint64_t>(ps) : 4096;
}

void MappedFile::Advise(uint64_t offset, uint64_t length,
                        Advice advice) const {
  if (data_ == nullptr || offset >= size_) return;
  // Degraded mode: an injected advise fault drops the hint — the contract
  // is best-effort, so the system must behave identically without it.
  if (FaultRegistry::Instance().ShouldInject(FaultSiteId::kMappedFileAdvise)) {
    return;
  }
  length = std::min<uint64_t>(length, size_ - offset);
  // Expand outward to page boundaries: madvise requires a page-aligned
  // start, and partial trailing pages are covered by rounding up.
  uint64_t page = PageSize();
  uint64_t begin = offset & ~(page - 1);
  uint64_t end = offset + length;
  int adv = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal: adv = MADV_NORMAL; break;
    case Advice::kSequential: adv = MADV_SEQUENTIAL; break;
    case Advice::kRandom: adv = MADV_RANDOM; break;
    case Advice::kWillNeed: adv = MADV_WILLNEED; break;
    case Advice::kDontNeed: adv = MADV_DONTNEED; break;
  }
  // Best-effort by contract.
  (void)::madvise(const_cast<uint8_t*>(data_) + begin, end - begin, adv);
}

}  // namespace lbr
