#include "util/bitvector.h"

#include <algorithm>
#include <cassert>

#include "util/bitops.h"

namespace lbr {

using bitops::WordsFor;

Bitvector::Bitvector(size_t n, bool value)
    : size_(n), words_(WordsFor(n), value ? ~uint64_t{0} : 0) {
  ZeroTail();
}

void Bitvector::Resize(size_t n) {
  size_ = n;
  words_.resize(WordsFor(n), 0);
  ZeroTail();
}

void Bitvector::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
}

void Bitvector::AssignWords(const uint64_t* words, size_t nwords,
                            size_t nbits) {
  size_ = nbits;
  words_.assign(WordsFor(nbits), 0);
  std::copy(words, words + std::min(nwords, words_.size()), words_.begin());
  ZeroTail();
}

void Bitvector::Fill() {
  std::fill(words_.begin(), words_.end(), ~uint64_t{0});
  ZeroTail();
}

void Bitvector::SetRange(size_t begin, size_t end) {
  end = std::min(end, size_);
  if (begin >= end) return;
  bitops::SetBitRange(words_.data(), begin, end);
}

void Bitvector::ClearRange(size_t begin, size_t end) {
  end = std::min(end, size_);
  if (begin >= end) return;
  bitops::ClearBitRange(words_.data(), begin, end);
}

size_t Bitvector::Count() const {
  return static_cast<size_t>(bitops::PopcountWords(words_.data(),
                                                   words_.size()));
}

bool Bitvector::None() const {
  return !bitops::AnyWord(words_.data(), words_.size());
}

bool Bitvector::All() const {
  return bitops::AllInRange(words_.data(), 0, size_);
}

size_t Bitvector::FindFirst() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return (w << 6) + static_cast<size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return size_;
}

size_t Bitvector::FindNext(size_t i) const {
  ++i;
  if (i >= size_) return size_;
  size_t w = i >> 6;
  uint64_t word = words_[w] >> (i & 63);
  if (word != 0) return i + static_cast<size_t>(__builtin_ctzll(word));
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return (w << 6) + static_cast<size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return size_;
}

void Bitvector::And(const Bitvector& other) {
  assert(size_ == other.size_);
  bitops::AndWords(words_.data(), other.words_.data(), words_.size());
}

void Bitvector::Or(const Bitvector& other) {
  assert(size_ == other.size_);
  bitops::OrWords(words_.data(), other.words_.data(), words_.size());
}

void Bitvector::AndNot(const Bitvector& other) {
  assert(size_ == other.size_);
  bitops::AndNotWords(words_.data(), other.words_.data(), words_.size());
}

void Bitvector::Not() {
  for (uint64_t& w : words_) w = ~w;
  ZeroTail();
}

void Bitvector::TruncateBitsFrom(size_t n) {
  // Bits past size_ are already zero by invariant, so clearing [n, size_)
  // suffices; ClearRange clamps.
  ClearRange(n, size_);
}

Bitvector Bitvector::Resized(size_t n) const {
  Bitvector out;
  out.AssignResized(*this, n);
  return out;
}

void Bitvector::AssignResized(const Bitvector& src, size_t n) {
  assert(this != &src);
  size_ = n;
  words_.resize(WordsFor(n));
  size_t copy_words = std::min(words_.size(), src.words_.size());
  std::copy(src.words_.begin(),
            src.words_.begin() + static_cast<long>(copy_words),
            words_.begin());
  std::fill(words_.begin() + static_cast<long>(copy_words), words_.end(), 0);
  ZeroTail();
}

void Bitvector::AppendSetBits(std::vector<uint32_t>* out) const {
  bitops::AppendSetBits(words_.data(), words_.size(), 0, out);
}

void Bitvector::AppendAndSetBits(const Bitvector& other,
                                 std::vector<uint32_t>* out) const {
  size_t n = std::min(words_.size(), other.words_.size());
  bitops::AppendAndSetBits(words_.data(), other.words_.data(), n, out);
}

std::vector<uint32_t> Bitvector::SetBits() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  AppendSetBits(&out);
  return out;
}

bool Bitvector::operator==(const Bitvector& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

void Bitvector::ZeroTail() {
  if (!words_.empty()) words_.back() &= bitops::TailMask(size_);
}

}  // namespace lbr
