#include "util/bitvector.h"

#include <algorithm>
#include <cassert>

namespace lbr {

namespace {
constexpr size_t WordsFor(size_t bits) { return (bits + 63) >> 6; }
}  // namespace

Bitvector::Bitvector(size_t n, bool value)
    : size_(n), words_(WordsFor(n), value ? ~uint64_t{0} : 0) {
  ZeroTail();
}

void Bitvector::Resize(size_t n) {
  size_ = n;
  words_.resize(WordsFor(n), 0);
  ZeroTail();
}

void Bitvector::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
}

void Bitvector::Fill() {
  std::fill(words_.begin(), words_.end(), ~uint64_t{0});
  ZeroTail();
}

size_t Bitvector::Count() const {
  size_t c = 0;
  for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
  return c;
}

bool Bitvector::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool Bitvector::All() const {
  if (size_ == 0) return true;
  size_t full_words = size_ >> 6;
  for (size_t i = 0; i < full_words; ++i) {
    if (words_[i] != ~uint64_t{0}) return false;
  }
  size_t rem = size_ & 63;
  if (rem != 0) {
    uint64_t mask = (uint64_t{1} << rem) - 1;
    if ((words_[full_words] & mask) != mask) return false;
  }
  return true;
}

size_t Bitvector::FindFirst() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return (w << 6) + static_cast<size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return size_;
}

size_t Bitvector::FindNext(size_t i) const {
  ++i;
  if (i >= size_) return size_;
  size_t w = i >> 6;
  uint64_t word = words_[w] >> (i & 63);
  if (word != 0) return i + static_cast<size_t>(__builtin_ctzll(word));
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return (w << 6) + static_cast<size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return size_;
}

void Bitvector::And(const Bitvector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Bitvector::Or(const Bitvector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void Bitvector::AndNot(const Bitvector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

void Bitvector::Not() {
  for (uint64_t& w : words_) w = ~w;
  ZeroTail();
}

void Bitvector::TruncateBitsFrom(size_t n) {
  if (n >= size_) return;
  size_t w = n >> 6;
  size_t rem = n & 63;
  if (rem != 0) {
    words_[w] &= (uint64_t{1} << rem) - 1;
    ++w;
  }
  for (; w < words_.size(); ++w) words_[w] = 0;
}

Bitvector Bitvector::Resized(size_t n) const {
  Bitvector out;
  out.size_ = n;
  out.words_.assign(WordsFor(n), 0);
  size_t copy_words = std::min(out.words_.size(), words_.size());
  std::copy(words_.begin(), words_.begin() + static_cast<long>(copy_words),
            out.words_.begin());
  out.ZeroTail();
  if (n < size_) {
    // Already handled by word truncation + ZeroTail.
  }
  return out;
}

void Bitvector::AppendSetBits(std::vector<uint32_t>* out) const {
  ForEachSetBit([out](uint32_t i) { out->push_back(i); });
}

std::vector<uint32_t> Bitvector::SetBits() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  AppendSetBits(&out);
  return out;
}

bool Bitvector::operator==(const Bitvector& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

void Bitvector::ZeroTail() {
  size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << rem) - 1;
  }
}

}  // namespace lbr
