#ifndef LBR_UTIL_RNG_H_
#define LBR_UTIL_RNG_H_

#include <cstdint>

namespace lbr {

/// Deterministic xorshift64* pseudo-random generator.
///
/// The workload generators (LUBM-like, UniProt-like, DBPedia-like) and the
/// property tests need reproducible randomness so that every run of a bench
/// or test sees the same data; std::mt19937 would also work but its
/// distributions are not guaranteed identical across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-like skewed pick in [0, n): rank r is chosen with probability
  /// proportional to 1/(r+1)^theta. Used to mimic the skew of real RDF data
  /// (a few popular objects such as :NewYorkCity attract most triples).
  uint64_t Zipf(uint64_t n, double theta = 0.99);

 private:
  uint64_t state_;
};

}  // namespace lbr

#endif  // LBR_UTIL_RNG_H_
