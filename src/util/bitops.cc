#include "util/bitops.h"

namespace lbr {
namespace bitops {

namespace {

// Mask of the bits of one word covered by [begin, end) when both fall in
// that word's range. `lo`/`hi` are in-word bit offsets, hi exclusive.
inline uint64_t SpanMask(size_t lo, size_t hi) {
  uint64_t high = (hi >= 64) ? ~uint64_t{0} : (uint64_t{1} << hi) - 1;
  return high & ~((uint64_t{1} << lo) - 1);
}

}  // namespace

void SetBitRange(uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    w[first] |= SpanMask(begin & 63, ((end - 1) & 63) + 1);
    return;
  }
  w[first] |= SpanMask(begin & 63, 64);
  for (size_t i = first + 1; i < last; ++i) w[i] = ~uint64_t{0};
  w[last] |= SpanMask(0, ((end - 1) & 63) + 1);
}

void ClearBitRange(uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    w[first] &= ~SpanMask(begin & 63, ((end - 1) & 63) + 1);
    return;
  }
  w[first] &= ~SpanMask(begin & 63, 64);
  for (size_t i = first + 1; i < last; ++i) w[i] = 0;
  w[last] &= ~SpanMask(0, ((end - 1) & 63) + 1);
}

bool AnyInRange(const uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return false;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    return (w[first] & SpanMask(begin & 63, ((end - 1) & 63) + 1)) != 0;
  }
  if ((w[first] & SpanMask(begin & 63, 64)) != 0) return true;
  for (size_t i = first + 1; i < last; ++i) {
    if (w[i] != 0) return true;
  }
  return (w[last] & SpanMask(0, ((end - 1) & 63) + 1)) != 0;
}

bool AllInRange(const uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return true;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    uint64_t span = SpanMask(begin & 63, ((end - 1) & 63) + 1);
    return (w[first] & span) == span;
  }
  uint64_t head = SpanMask(begin & 63, 64);
  if ((w[first] & head) != head) return false;
  for (size_t i = first + 1; i < last; ++i) {
    if (w[i] != ~uint64_t{0}) return false;
  }
  uint64_t tail = SpanMask(0, ((end - 1) & 63) + 1);
  return (w[last] & tail) == tail;
}

uint64_t PopcountRange(const uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return 0;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    return static_cast<uint64_t>(__builtin_popcountll(
        w[first] & SpanMask(begin & 63, ((end - 1) & 63) + 1)));
  }
  uint64_t c = static_cast<uint64_t>(
      __builtin_popcountll(w[first] & SpanMask(begin & 63, 64)));
  for (size_t i = first + 1; i < last; ++i) {
    c += static_cast<uint64_t>(__builtin_popcountll(w[i]));
  }
  c += static_cast<uint64_t>(
      __builtin_popcountll(w[last] & SpanMask(0, ((end - 1) & 63) + 1)));
  return c;
}

void AppendSetBits(const uint64_t* w, size_t n, uint32_t base,
                   std::vector<uint32_t>* out) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t word = w[i];
    uint32_t word_base = base + static_cast<uint32_t>(i << 6);
    while (word != 0) {
      out->push_back(word_base +
                     static_cast<uint32_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
}

void AppendSetBitsInRange(const uint64_t* w, size_t begin, size_t end,
                          std::vector<uint32_t>* out) {
  if (begin >= end) return;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  for (size_t i = first; i <= last; ++i) {
    uint64_t word = w[i];
    if (i == first) word &= SpanMask(begin & 63, 64);
    if (i == last) word &= SpanMask(0, ((end - 1) & 63) + 1);
    uint32_t word_base = static_cast<uint32_t>(i << 6);
    while (word != 0) {
      out->push_back(word_base +
                     static_cast<uint32_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
}

void AppendAndSetBits(const uint64_t* a, const uint64_t* b, size_t n,
                      std::vector<uint32_t>* out) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t word = a[i] & b[i];
    uint32_t word_base = static_cast<uint32_t>(i << 6);
    while (word != 0) {
      out->push_back(word_base +
                     static_cast<uint32_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
}

}  // namespace bitops
}  // namespace lbr
