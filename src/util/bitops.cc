#include "util/bitops.h"

#include <cstdlib>

#include "util/bitops_internal.h"

namespace lbr {
namespace bitops {

// ---------------------------------------------------------------------------
// Scalar kernels — the portable fallback and the correctness oracle for the
// SIMD paths (tests/simd_kernel_test pins every backend against these).
// ---------------------------------------------------------------------------

namespace {

using detail::SpanMask;

void AndWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void OrWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void AndNotWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

uint64_t PopcountWordsScalar(const uint64_t* w, size_t n) {
  uint64_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c += static_cast<uint64_t>(__builtin_popcountll(w[i]));
  }
  return c;
}

void SetBitRangeScalar(uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    w[first] |= SpanMask(begin & 63, ((end - 1) & 63) + 1);
    return;
  }
  w[first] |= SpanMask(begin & 63, 64);
  for (size_t i = first + 1; i < last; ++i) w[i] = ~uint64_t{0};
  w[last] |= SpanMask(0, ((end - 1) & 63) + 1);
}

bool AnyInRangeScalar(const uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return false;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    return (w[first] & SpanMask(begin & 63, ((end - 1) & 63) + 1)) != 0;
  }
  if ((w[first] & SpanMask(begin & 63, 64)) != 0) return true;
  for (size_t i = first + 1; i < last; ++i) {
    if (w[i] != 0) return true;
  }
  return (w[last] & SpanMask(0, ((end - 1) & 63) + 1)) != 0;
}

bool AllInRangeScalar(const uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return true;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    uint64_t span = SpanMask(begin & 63, ((end - 1) & 63) + 1);
    return (w[first] & span) == span;
  }
  uint64_t head = SpanMask(begin & 63, 64);
  if ((w[first] & head) != head) return false;
  for (size_t i = first + 1; i < last; ++i) {
    if (w[i] != ~uint64_t{0}) return false;
  }
  uint64_t tail = SpanMask(0, ((end - 1) & 63) + 1);
  return (w[last] & tail) == tail;
}

uint64_t PopcountRangeScalar(const uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return 0;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    return static_cast<uint64_t>(__builtin_popcountll(
        w[first] & SpanMask(begin & 63, ((end - 1) & 63) + 1)));
  }
  uint64_t c = static_cast<uint64_t>(
      __builtin_popcountll(w[first] & SpanMask(begin & 63, 64)));
  for (size_t i = first + 1; i < last; ++i) {
    c += static_cast<uint64_t>(__builtin_popcountll(w[i]));
  }
  c += static_cast<uint64_t>(
      __builtin_popcountll(w[last] & SpanMask(0, ((end - 1) & 63) + 1)));
  return c;
}

void AppendSetBitsScalar(const uint64_t* w, size_t n, uint32_t base,
                         std::vector<uint32_t>* out) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t word = w[i];
    uint32_t word_base = base + static_cast<uint32_t>(i << 6);
    while (word != 0) {
      out->push_back(word_base +
                     static_cast<uint32_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
}

void AppendSetBitsInRangeScalar(const uint64_t* w, size_t begin, size_t end,
                                std::vector<uint32_t>* out) {
  if (begin >= end) return;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  for (size_t i = first; i <= last; ++i) {
    uint64_t word = w[i];
    if (i == first) word &= SpanMask(begin & 63, 64);
    if (i == last) word &= SpanMask(0, ((end - 1) & 63) + 1);
    uint32_t word_base = static_cast<uint32_t>(i << 6);
    while (word != 0) {
      out->push_back(word_base +
                     static_cast<uint32_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
}

void AppendAndSetBitsScalar(const uint64_t* a, const uint64_t* b, size_t n,
                            std::vector<uint32_t>* out) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t word = a[i] & b[i];
    uint32_t word_base = static_cast<uint32_t>(i << 6);
    while (word != 0) {
      out->push_back(word_base +
                     static_cast<uint32_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
}

size_t IntersectSortedU32Scalar(const uint32_t* a, size_t na,
                                const uint32_t* b, size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, kept = 0;
  while (i < na && j < nb) {
    uint32_t av = a[i], bv = b[j];
    if (av < bv) {
      ++i;
    } else if (bv < av) {
      ++j;
    } else {
      out[kept++] = av;
      ++i;
      ++j;
    }
  }
  return kept;
}

constexpr detail::KernelTable kScalarTable = {
    "scalar",
    &AndWordsScalar,
    &OrWordsScalar,
    &AndNotWordsScalar,
    &PopcountWordsScalar,
    &PopcountRangeScalar,
    &SetBitRangeScalar,
    &AnyInRangeScalar,
    &AllInRangeScalar,
    &AppendSetBitsScalar,
    &AppendSetBitsInRangeScalar,
    &AppendAndSetBitsScalar,
    &IntersectSortedU32Scalar,
};

/// True when LBR_FORCE_SCALAR pins the fallback (any non-empty value other
/// than "0").
bool ForcedScalarByEnv() {
  const char* v = std::getenv("LBR_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

/// Startup selection: the strongest table the CPU supports, unless the
/// environment pins scalar. Each ISA getter returns nullptr when its TU was
/// built without the ISA, and the getters themselves check CPUID — so a
/// binary built with AVX2 kernels still runs (on the scalar or SSE4.2
/// path) on a machine without them.
const detail::KernelTable* SelectTable() {
  if (ForcedScalarByEnv()) return &kScalarTable;
  if (const detail::KernelTable* t = detail::Avx2Table()) return t;
  if (const detail::KernelTable* t = detail::Sse42Table()) return t;
  return &kScalarTable;
}

/// Runs the selection during static initialization, before main and before
/// any threads exist. g_active's constant initializer (the scalar table)
/// covers callers that run even earlier.
struct StartupSelector {
  StartupSelector() {
    detail::g_active.store(SelectTable(), std::memory_order_relaxed);
  }
} g_startup_selector;

}  // namespace

namespace detail {

std::atomic<const KernelTable*> g_active{&kScalarTable};

const KernelTable* ScalarTable() { return &kScalarTable; }

}  // namespace detail

const detail::KernelTable* KernelsFor(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return &kScalarTable;
    case KernelBackend::kSse42:
      return detail::Sse42Table();
    case KernelBackend::kAvx2:
      return detail::Avx2Table();
  }
  return nullptr;
}

KernelBackend ActiveKernelBackend() {
  const detail::KernelTable* active = &detail::Active();
  if (active == detail::Avx2Table()) return KernelBackend::kAvx2;
  if (active == detail::Sse42Table()) return KernelBackend::kSse42;
  return KernelBackend::kScalar;
}

const char* ActiveKernelName() { return detail::Active().name; }

bool ForceKernelBackend(KernelBackend backend) {
  const detail::KernelTable* table = KernelsFor(backend);
  if (table == nullptr) return false;
  detail::g_active.store(table, std::memory_order_relaxed);
  return true;
}

void ResetKernelBackend() {
  detail::g_active.store(SelectTable(), std::memory_order_relaxed);
}

void ClearBitRange(uint64_t* w, size_t begin, size_t end) {
  if (begin >= end) return;
  size_t first = begin >> 6;
  size_t last = (end - 1) >> 6;
  if (first == last) {
    w[first] &= ~detail::SpanMask(begin & 63, ((end - 1) & 63) + 1);
    return;
  }
  w[first] &= ~detail::SpanMask(begin & 63, 64);
  for (size_t i = first + 1; i < last; ++i) w[i] = 0;
  w[last] &= ~detail::SpanMask(0, ((end - 1) & 63) + 1);
}

}  // namespace bitops
}  // namespace lbr
