#ifndef LBR_UTIL_COMPRESSED_ROW_H_
#define LBR_UTIL_COMPRESSED_ROW_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/bitvector.h"

namespace lbr {

/// One compressed row of a BitMat (Section 4 of the paper).
///
/// The paper's hybrid compression stores each bit-row either as
///  - run-length encoding: a leading bit value plus run lengths
///    ("1110011110" -> [1] 3 2 4 1), or
///  - the explicit sorted positions of the set bits ("0010010000" -> 3 6),
/// whichever uses fewer 4-byte integers. The hybrid fetches ~40% index-size
/// reduction over pure RLE on sparse rows.
///
/// All operations (`Test`, `OrInto`, `AndWith`, iteration) work directly on
/// the compressed form; a row is never expanded to an uncompressed bit
/// buffer.
class CompressedRow {
 public:
  enum class Encoding : uint8_t {
    kEmpty = 0,      ///< No set bits; zero payload.
    kPositions = 1,  ///< Payload is sorted set-bit positions.
    kRuns = 2,       ///< Payload is run lengths; `first_bit` gives run 0's value.
  };

  CompressedRow() = default;

  /// Builds the optimal (smallest) encoding from an uncompressed bit vector.
  static CompressedRow FromBitvector(const Bitvector& bits);
  /// Builds the optimal encoding from sorted, duplicate-free positions.
  static CompressedRow FromPositions(const std::vector<uint32_t>& positions);
  /// Builds a pure run-length encoding (no hybrid fallback). Used by the
  /// index-size ablation to quantify the hybrid's savings.
  static CompressedRow RleOnlyFromPositions(
      const std::vector<uint32_t>& positions);

  /// Builds a zero-copy *view* over an externally owned payload (a snapshot
  /// extent in a memory-mapped file). The row borrows `payload` — the
  /// caller guarantees the words outlive every copy of the view (snapshot
  /// extents live as long as the TripleIndex's mapping, so views sliced out
  /// of them are safe to share, cache, and copy). All read operations work
  /// identically on views; the first mutating operation (AndWithInPlace
  /// re-encode) converts the row to owned storage.
  static CompressedRow View(Encoding encoding, bool first_bit, uint32_t count,
                            const uint32_t* payload, uint32_t payload_words);

  /// True when the payload is borrowed (see View()).
  bool is_view() const { return ext_data_ != nullptr; }

  /// Heap bytes owned by this row (0 for views) — the unit of the snapshot
  /// tier's resident-memory accounting.
  size_t OwnedHeapBytes() const {
    return ext_data_ != nullptr ? 0 : payload_.capacity() * sizeof(uint32_t);
  }

  Encoding encoding() const { return encoding_; }
  bool IsEmpty() const { return encoding_ == Encoding::kEmpty; }
  /// Value of run 0 (kRuns only) — exposed for snapshot serialization.
  bool first_bit() const { return first_bit_; }

  /// Number of set bits.
  uint32_t Count() const { return count_; }

  /// Returns true iff bit `pos` is set.
  bool Test(uint32_t pos) const;

  /// ORs this row into `*out` (out->size() must cover every set position).
  void OrInto(Bitvector* out) const;

  /// Returns this row ANDed with `mask`: only set bits whose position is set
  /// in `mask` survive. Positions >= mask.size() are dropped.
  CompressedRow AndWith(const Bitvector& mask) const;

  /// In-place AndWith: re-encodes this row to the masked row, reusing the
  /// payload's capacity. `scratch` (optional) receives the surviving
  /// positions and keeps its capacity across calls, so a warmed-up caller
  /// performs no heap allocation; pass one when calling in a loop.
  void AndWithInPlace(const Bitvector& mask,
                      std::vector<uint32_t>* scratch = nullptr);

  /// True iff the intersection with `mask` is non-empty (no allocation).
  /// Run-encoded rows test whole 64-bit mask words with early exit.
  bool IntersectsWith(const Bitvector& mask) const;

  /// Keeps only the entries of `positions` (sorted ascending) whose bit is
  /// set in this row — a single linear merge over the two compressed
  /// sequences (two-pointer walk on position rows, run walk on RLE rows),
  /// in place. The compressed-space form of candidate ∧ constraint-row for
  /// the multiway join: O(|positions| + payload) with sequential access,
  /// where per-candidate Test probes would pay a search per entry.
  void IntersectSortedPositions(std::vector<uint32_t>* positions) const;

  /// True iff every set bit of this row is also set in `mask` — i.e. the
  /// mask would drop nothing. Word-parallel on run rows, early exit on the
  /// first hole, no allocation; the fast path of the copy-on-write unfold
  /// ("unchanged rows keep their shared handle"). Bits at positions >=
  /// mask.size() count as dropped.
  bool IsSubsetOf(const Bitvector& mask) const;

  /// Appends the positions surviving `mask` (ascending) to `*out` without
  /// re-encoding; the word-parallel core shared by AndWith/AndWithInPlace.
  /// Callers that must not mutate a shared row (BitMat's copy-on-write
  /// Unfold) use this to decide whether any bit is dropped before cloning.
  void AppendMaskedPositions(const Bitvector& mask,
                             std::vector<uint32_t>* out) const;

  /// Appends all set-bit positions (ascending) to `*out`.
  void AppendSetBits(std::vector<uint32_t>* out) const;
  std::vector<uint32_t> SetBits() const;

  /// Calls `fn(pos)` for every set bit, ascending.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    const uint32_t* pd = pdata();
    const size_t pn = psize();
    switch (encoding_) {
      case Encoding::kEmpty:
        return;
      case Encoding::kPositions:
        for (size_t i = 0; i < pn; ++i) fn(pd[i]);
        return;
      case Encoding::kRuns: {
        uint32_t pos = 0;
        bool bit = first_bit_;
        for (size_t r = 0; r < pn; ++r) {
          uint32_t run = pd[r];
          if (bit) {
            for (uint32_t i = 0; i < run; ++i) fn(pos + i);
          }
          pos += run;
          bit = !bit;
        }
        return;
      }
    }
  }

  /// Bytes used by the payload (the 4-byte integers of the paper's scheme),
  /// for index-size accounting. Views count their borrowed words.
  size_t PayloadBytes() const { return psize() * sizeof(uint32_t); }
  /// Number of payload integers.
  size_t PayloadInts() const { return psize(); }

  /// Payload span: the owned vector or, for views, the borrowed extent
  /// words. Every read path decodes through this pair, so views and owned
  /// rows are indistinguishable to consumers.
  const uint32_t* pdata() const {
    return ext_data_ != nullptr ? ext_data_ : payload_.data();
  }
  size_t psize() const {
    return ext_data_ != nullptr ? ext_size_ : payload_.size();
  }

  bool operator==(const CompressedRow& other) const;
  bool operator!=(const CompressedRow& other) const {
    return !(*this == other);
  }

  /// Binary serialization (little-endian, self-delimiting).
  void WriteTo(std::ostream* out) const;
  static CompressedRow ReadFrom(std::istream* in);

 private:
  static CompressedRow EncodeOptimal(const std::vector<uint32_t>& positions,
                                     bool allow_positions);
  /// Re-encodes `positions` into `*row`, reusing row->payload_'s capacity.
  /// `positions` must not alias row->payload_.
  static void EncodeOptimalInto(const std::vector<uint32_t>& positions,
                                bool allow_positions, CompressedRow* row);

  Encoding encoding_ = Encoding::kEmpty;
  bool first_bit_ = false;       // Only meaningful for kRuns.
  uint32_t count_ = 0;           // Cached set-bit count.
  std::vector<uint32_t> payload_;
  // View mode (snapshot extents): non-null borrows `ext_size_` words from
  // external storage; payload_ stays empty. Copies stay views (the borrow
  // outlives them by the View() contract); re-encoding clears it.
  const uint32_t* ext_data_ = nullptr;
  uint32_t ext_size_ = 0;
};

}  // namespace lbr

#endif  // LBR_UTIL_COMPRESSED_ROW_H_
