#ifndef LBR_BITMAT_TRIPLE_INDEX_H_
#define LBR_BITMAT_TRIPLE_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bitmat/bitmat.h"
#include "rdf/graph.h"
#include "util/bitvector.h"
#include "util/compressed_row.h"

namespace lbr {

/// The on-disk / in-memory index over an RDF graph: the 3-D bitcube of
/// Section 4 sliced into 2-D BitMats.
///
/// The paper stores 2|Vp| + |Vs| + |Vo| BitMats: an S-O and an O-S BitMat
/// per predicate, a P-O BitMat per subject, and a P-S BitMat per object.
/// The P-S BitMat of object `o` has, at row `p`, exactly the same bit-row as
/// row `o` of the O-S BitMat of `p` (and symmetrically for P-O/S-O), so this
/// implementation materializes the per-predicate families and *derives* the
/// per-subject/per-object families on demand — identical query-visible
/// content with 2x less storage. Index-size reporting can still quote the
/// as-if-materialized sizes of all four families for parity with the paper.
///
/// Per-predicate matrices are stored sparsely: only non-empty rows are kept,
/// sorted by row id, with a condensed non-empty-row Bitvector per
/// orientation (the "meta-information" of Appendix D that lets selectivity
/// be judged without scanning payload).
class TripleIndex {
 public:
  TripleIndex() = default;

  /// Builds the index from a graph's encoded triples.
  static TripleIndex Build(const Graph& graph);

  uint32_t num_subjects() const { return num_subjects_; }
  uint32_t num_predicates() const { return num_predicates_; }
  uint32_t num_objects() const { return num_objects_; }
  /// |Vso|: the S-O join-compatible ID range (Appendix D).
  uint32_t num_common() const { return num_common_; }
  uint64_t num_triples() const { return num_triples_; }

  /// Number of triples with predicate `p` (selectivity metadata).
  uint64_t PredicateCardinality(uint32_t p) const {
    return pred_counts_[p];
  }

  /// Row `s` of the S-O BitMat of predicate `p`: objects `o` with (s,p,o).
  /// Returns an empty row when absent.
  const CompressedRow& SoRow(uint32_t p, uint32_t s) const;
  /// Row `o` of the O-S BitMat of predicate `p`: subjects `s` with (s,p,o).
  const CompressedRow& OsRow(uint32_t p, uint32_t o) const;

  /// Non-empty-row bit arrays (condensed metadata).
  const Bitvector& SubjectsOf(uint32_t p) const {
    return preds_[p].non_empty_s;
  }
  const Bitvector& ObjectsOf(uint32_t p) const { return preds_[p].non_empty_o; }

  /// All non-empty (s, row) pairs of the S-O BitMat of `p`, ascending s.
  const std::vector<std::pair<uint32_t, CompressedRow>>& SoRows(
      uint32_t p) const {
    return preds_[p].so_rows;
  }
  const std::vector<std::pair<uint32_t, CompressedRow>>& OsRows(
      uint32_t p) const {
    return preds_[p].os_rows;
  }

  /// Materializes the P-O BitMat of subject `s` (rows = predicates,
  /// cols = objects) — the per-subject slice family of the paper.
  BitMat PoBitMat(uint32_t s) const;
  /// Materializes the P-S BitMat of object `o` (rows = predicates,
  /// cols = subjects).
  BitMat PsBitMat(uint32_t o) const;

  /// Index-size accounting for the Section 6 "Index Sizes" experiment.
  struct SizeReport {
    uint64_t so_bytes = 0;      ///< S-O family payload (also the derived P-O).
    uint64_t os_bytes = 0;      ///< O-S family payload (also the derived P-S).
    uint64_t hybrid_bytes = 0;  ///< Total, all four families, hybrid encoding.
    uint64_t rle_only_bytes = 0;  ///< Total if rows used pure RLE (ablation).
    uint64_t num_rows = 0;      ///< Non-empty compressed rows stored.
  };
  SizeReport ComputeSizeReport() const;

  /// Binary serialization of the whole index.
  void WriteTo(std::ostream* out) const;
  static TripleIndex ReadFrom(std::istream* in);
  void SaveToFile(const std::string& path) const;
  static TripleIndex LoadFromFile(const std::string& path);

 private:
  struct PredSlice {
    // Sorted by first (row id); only non-empty rows present.
    std::vector<std::pair<uint32_t, CompressedRow>> so_rows;
    std::vector<std::pair<uint32_t, CompressedRow>> os_rows;
    Bitvector non_empty_s;
    Bitvector non_empty_o;
  };

  static const CompressedRow& FindRow(
      const std::vector<std::pair<uint32_t, CompressedRow>>& rows,
      uint32_t id);

  uint32_t num_subjects_ = 0;
  uint32_t num_predicates_ = 0;
  uint32_t num_objects_ = 0;
  uint32_t num_common_ = 0;
  uint64_t num_triples_ = 0;
  std::vector<uint64_t> pred_counts_;
  std::vector<PredSlice> preds_;
};

}  // namespace lbr

#endif  // LBR_BITMAT_TRIPLE_INDEX_H_
