#ifndef LBR_BITMAT_TRIPLE_INDEX_H_
#define LBR_BITMAT_TRIPLE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bitmat/bitmat.h"
#include "bitmat/snapshot_format.h"
#include "rdf/graph.h"
#include "util/bitvector.h"
#include "util/compressed_row.h"
#include "util/mapped_file.h"
#include "util/query_control.h"

namespace lbr {

/// The on-disk / in-memory index over an RDF graph: the 3-D bitcube of
/// Section 4 sliced into 2-D BitMats.
///
/// The paper stores 2|Vp| + |Vs| + |Vo| BitMats: an S-O and an O-S BitMat
/// per predicate, a P-O BitMat per subject, and a P-S BitMat per object.
/// The P-S BitMat of object `o` has, at row `p`, exactly the same bit-row as
/// row `o` of the O-S BitMat of `p` (and symmetrically for P-O/S-O), so this
/// implementation materializes the per-predicate families and *derives* the
/// per-subject/per-object families on demand — identical query-visible
/// content with 2x less storage. Index-size reporting can still quote the
/// as-if-materialized sizes of all four families for parity with the paper.
///
/// Per-predicate matrices are stored sparsely: only non-empty rows are kept,
/// sorted by row id, with a condensed non-empty-row Bitvector per
/// orientation (the "meta-information" of Appendix D that lets selectivity
/// be judged without scanning payload).
///
/// Two storage backends (DESIGN.md §11):
///  - Heap mode (Build/ReadFrom): every slice is resident from the start.
///  - Mapped mode (a snapshot opened through Database::OpenSnapshot): the
///    file is mmap'd and slices materialize lazily on first touch as
///    vectors of zero-copy CompressedRow views into the mapped extents, so
///    the first query pays only for the predicates it touches. Under a
///    memory budget, cold slices *spill*: their heap structures are freed
///    and their extent pages are madvise(DONTNEED)'d back to the file; the
///    next touch re-materializes (and re-verifies) them.
///
/// Concurrency: heap mode is immutable after construction (lock-free
/// reads). Mapped mode guards each slice with a per-predicate mutex;
/// `Slice()` returns a shared_ptr pin that keeps a slice alive across
/// spills, so concurrent readers and the spiller never race. The
/// reference-returning accessors (SoRow/SoRows/...) stay valid until the
/// slice is spilled — hot engine paths hold pins; admin paths (size
/// report, WriteTo) assume no concurrent budget pressure.
class TripleIndex {
 public:
  /// One predicate's S-O and O-S matrices. Public so Slice() pins can hand
  /// the row vectors to the TP loader directly.
  struct PredSlice {
    // Sorted by first (row id); only non-empty rows present.
    std::vector<std::pair<uint32_t, CompressedRow>> so_rows;
    std::vector<std::pair<uint32_t, CompressedRow>> os_rows;
    /// Paranoid mode (LBR_SNAPSHOT_PARANOID, DESIGN.md §12): heap copies of
    /// the payload extents, pread from the file instead of borrowed from
    /// the mapping — the rows above view into these buffers, so a
    /// storage-level bit flip surfaces as a pread error or checksum
    /// mismatch, never a SIGBUS on a mapped access. Empty in normal mode.
    std::vector<uint32_t> so_extent_copy;
    std::vector<uint32_t> os_extent_copy;
    /// Heap bytes of the slice's own structures (vectors + owned payload +
    /// paranoid extent copies; view payload in the map is not counted) —
    /// the unit the snapshot memory budget meters.
    uint64_t heap_bytes = 0;
  };
  using SlicePin = std::shared_ptr<const PredSlice>;

  TripleIndex() = default;

  /// Builds the index from a graph's encoded triples.
  static TripleIndex Build(const Graph& graph);

  uint32_t num_subjects() const { return num_subjects_; }
  uint32_t num_predicates() const { return num_predicates_; }
  uint32_t num_objects() const { return num_objects_; }
  /// |Vso|: the S-O join-compatible ID range (Appendix D).
  uint32_t num_common() const { return num_common_; }
  uint64_t num_triples() const { return num_triples_; }

  /// Number of triples with predicate `p` (selectivity metadata).
  uint64_t PredicateCardinality(uint32_t p) const {
    return pred_counts_[p];
  }

  /// Pins predicate `p`'s slice: materializes it first in mapped mode.
  /// The pin keeps the slice's row vectors alive even if the slice is
  /// spilled concurrently — the loader's access protocol under a memory
  /// budget. Returns nullptr for out-of-range predicates.
  SlicePin Slice(uint32_t p) const;

  /// Finds row `id` in a pinned slice's sorted row vector (binary search);
  /// returns a shared empty row when absent.
  static const CompressedRow& FindRowIn(
      const std::vector<std::pair<uint32_t, CompressedRow>>& rows,
      uint32_t id);

  /// Row `s` of the S-O BitMat of predicate `p`: objects `o` with (s,p,o).
  /// Returns an empty row when absent. In mapped mode the reference is
  /// valid until the slice is spilled; prefer Slice() + FindRowIn under a
  /// memory budget.
  const CompressedRow& SoRow(uint32_t p, uint32_t s) const;
  /// Row `o` of the O-S BitMat of predicate `p`: subjects `s` with (s,p,o).
  const CompressedRow& OsRow(uint32_t p, uint32_t o) const;

  /// Non-empty-row bit arrays (condensed metadata). Always resident — in
  /// mapped mode they decode eagerly at open from the meta section, so
  /// stats collection and selectivity never touch row payload.
  const Bitvector& SubjectsOf(uint32_t p) const { return non_empty_s_[p]; }
  const Bitvector& ObjectsOf(uint32_t p) const { return non_empty_o_[p]; }

  /// All non-empty (s, row) pairs of the S-O BitMat of `p`, ascending s.
  /// Materializes the slice in mapped mode; see SoRow for the lifetime
  /// caveat.
  const std::vector<std::pair<uint32_t, CompressedRow>>& SoRows(
      uint32_t p) const {
    return EnsureSlice(p).so_rows;
  }
  const std::vector<std::pair<uint32_t, CompressedRow>>& OsRows(
      uint32_t p) const {
    return EnsureSlice(p).os_rows;
  }

  /// Materializes the P-O BitMat of subject `s` (rows = predicates,
  /// cols = objects) — the per-subject slice family of the paper.
  BitMat PoBitMat(uint32_t s) const;
  /// Materializes the P-S BitMat of object `o` (rows = predicates,
  /// cols = subjects).
  BitMat PsBitMat(uint32_t o) const;

  // --- Snapshot backend (DESIGN.md §11) -------------------------------------

  /// True when this index reads from a mapped snapshot.
  bool mapped() const { return backing_ != nullptr; }

  /// Installs the resident-memory budget for materialized slices.
  /// `meter` (optional, not owned, must outlive the index) supplies the
  /// accounting device — a QueryControl charged/released per slice, shared
  /// with the TpCache so one global budget covers both tiers; null makes
  /// the index meter privately. The meter's own budget stays 0 (pure
  /// accounting): going over triggers *spill*, never an abort. No-op in
  /// heap mode.
  void SetMemoryBudget(uint64_t bytes, QueryControl* meter = nullptr);

  /// Extra reclaim hook run before the index spills its own slices (wired
  /// by Database to TpCache eviction, so cold cache entries go first).
  /// Returns bytes released.
  void SetSpillHook(std::function<uint64_t()> hook);

  /// Spills cold unpinned slices (LRU by touch sequence) until the meter
  /// fits the budget, or until only pinned slices remain. Returns bytes
  /// released. Safe from any thread; also triggered automatically by
  /// materializations that overshoot.
  uint64_t SpillToFit() const;

  /// madvise(WILLNEED) on predicate `p`'s directory + extents — the
  /// planner-driven readahead hint for TPs about to be loaded. No-op in
  /// heap mode or for already-resident slices.
  void Prefetch(uint32_t p) const;

  /// Snapshot-tier observability (all zero in heap mode).
  uint64_t snapshot_materializations() const {
    return backing_ ? backing_->materializations.load(
                          std::memory_order_relaxed)
                    : 0;
  }
  uint64_t snapshot_spills() const {
    return backing_ ? backing_->spills.load(std::memory_order_relaxed) : 0;
  }
  uint64_t snapshot_prefetches() const {
    return backing_ ? backing_->prefetches.load(std::memory_order_relaxed)
                    : 0;
  }
  /// Current heap bytes held by materialized slices.
  uint64_t snapshot_resident_bytes() const {
    return backing_ ? backing_->resident_bytes.load(std::memory_order_relaxed)
                    : 0;
  }
  uint64_t snapshot_budget_bytes() const {
    return backing_ ? backing_->budget_bytes : 0;
  }
  /// Predicates quarantined by a checksum/corruption failure (degraded
  /// mode, DESIGN.md §12). Zero in heap mode.
  uint64_t snapshot_quarantined() const {
    return backing_ ? backing_->quarantines.load(std::memory_order_relaxed)
                    : 0;
  }
  /// The quarantined predicate IDs, ascending (empty in heap mode).
  std::vector<uint32_t> QuarantinedSlices() const;

  /// Integrity sweep for `.verify` / Database::VerifySnapshot: re-checks
  /// every slice's directory and extent checksums against the mapped bytes
  /// without materializing anything. Appends failing predicate IDs to
  /// `corrupt` and currently-quarantined IDs to `quarantined` (either may
  /// be null). Returns true when both lists are empty. Heap mode always
  /// verifies clean.
  bool VerifySlices(std::vector<uint32_t>* corrupt,
                    std::vector<uint32_t>* quarantined) const;

  /// Index-size accounting for the Section 6 "Index Sizes" experiment.
  struct SizeReport {
    uint64_t so_bytes = 0;      ///< S-O family payload (also the derived P-O).
    uint64_t os_bytes = 0;      ///< O-S family payload (also the derived P-S).
    uint64_t hybrid_bytes = 0;  ///< Total, all four families, hybrid encoding.
    uint64_t rle_only_bytes = 0;  ///< Total if rows used pure RLE (ablation).
    uint64_t num_rows = 0;      ///< Non-empty compressed rows stored.
  };
  SizeReport ComputeSizeReport() const;

  /// Binary serialization of the whole index (the legacy eager format;
  /// snapshots are written by Database::SaveSnapshot). Works from either
  /// backend — a mapped index materializes each slice as it streams out.
  void WriteTo(std::ostream* out) const;
  static TripleIndex ReadFrom(std::istream* in);
  void SaveToFile(const std::string& path) const;
  static TripleIndex LoadFromFile(const std::string& path);

 private:
  friend class SnapshotIO;

  /// Per-(predicate, orientation) location of the row directory and the
  /// page-aligned payload extent inside the mapped snapshot.
  struct SliceLoc {
    uint64_t dir_off = 0;       ///< Byte offset of the directory (absolute).
    uint32_t dir_rows = 0;      ///< Directory entries.
    uint64_t extent_off = 0;    ///< Byte offset of the extent (absolute).
    uint64_t extent_words = 0;  ///< Extent length in 4-byte words.
    uint64_t dir_crc = 0;
    uint64_t extent_crc = 0;
  };

  struct Backing {
    std::shared_ptr<MappedFile> file;
    std::vector<SliceLoc> so_loc;  ///< Indexed by predicate.
    std::vector<SliceLoc> os_loc;
    /// Per-predicate materialization locks; also guard preds_[p] loads in
    /// mapped mode (C++17 has no atomic shared_ptr).
    std::unique_ptr<std::mutex[]> mu;
    /// LRU clock: last-touch sequence per predicate.
    std::unique_ptr<std::atomic<uint64_t>[]> last_touch;
    /// Lock-free residency flags mirroring preds_[p] != nullptr (updated
    /// under mu[p]); the spiller's victim scan reads these instead of the
    /// shared_ptrs themselves.
    std::unique_ptr<std::atomic<uint8_t>[]> resident;
    std::atomic<uint64_t> touch_seq{0};
    // Budget + accounting (SetMemoryBudget).
    uint64_t budget_bytes = 0;
    QueryControl* meter = nullptr;       ///< External or &own_meter.
    QueryControl own_meter;
    std::function<uint64_t()> spill_hook;
    std::mutex spill_mu;                 ///< Serializes SpillToFit passes.
    // Telemetry.
    std::atomic<uint64_t> materializations{0};
    std::atomic<uint64_t> spills{0};
    std::atomic<uint64_t> prefetches{0};
    std::atomic<uint64_t> resident_bytes{0};
    /// Degraded mode (DESIGN.md §12): per-predicate quarantine flags, set
    /// when a materialization hits a checksum/corruption failure. A
    /// quarantined slice fails fast with a structured error on every
    /// subsequent touch (that query fails; other predicates keep serving).
    std::unique_ptr<std::atomic<uint8_t>[]> quarantined;
    std::atomic<uint64_t> quarantines{0};
    /// LBR_SNAPSHOT_PARANOID: pread slice bytes into heap instead of
    /// borrowing mapped words (for unreliable storage).
    bool paranoid = false;
  };

  /// Materialize-on-first-touch for mapped mode; heap mode returns the
  /// resident slice directly.
  const PredSlice& EnsureSlice(uint32_t p) const;
  std::shared_ptr<PredSlice> MaterializeSlice(uint32_t p) const;
  /// Decodes one orientation's rows from the mapped directory + extent,
  /// verifying both checksums. Throws SnapshotError on any mismatch. When
  /// `extent_copy` is non-null (paranoid mode), the extent is pread into it
  /// and the rows view the heap copy instead of the map.
  void DecodeSliceRows(
      const SliceLoc& loc, const char* what,
      std::vector<std::pair<uint32_t, CompressedRow>>* rows,
      std::vector<uint32_t>* extent_copy = nullptr) const;

  uint32_t num_subjects_ = 0;
  uint32_t num_predicates_ = 0;
  uint32_t num_objects_ = 0;
  uint32_t num_common_ = 0;
  uint64_t num_triples_ = 0;
  std::vector<uint64_t> pred_counts_;
  /// Always-resident condensed metadata (one Bitvector pair per predicate).
  std::vector<Bitvector> non_empty_s_;
  std::vector<Bitvector> non_empty_o_;
  /// Slice storage. Heap mode: every entry non-null after construction,
  /// never mutated (lock-free). Mapped mode: entries start null and are
  /// published/spilled under backing_->mu[p].
  mutable std::vector<std::shared_ptr<PredSlice>> preds_;
  mutable std::unique_ptr<Backing> backing_;
};

}  // namespace lbr

#endif  // LBR_BITMAT_TRIPLE_INDEX_H_
