#include "bitmat/tp_loader.h"

#include <algorithm>

#include "util/fault_injection.h"

namespace lbr {

namespace {

// Applies active-pruning masks while copying (id, row) pairs into `bm`.
void FillRows(const std::vector<std::pair<uint32_t, CompressedRow>>& rows,
              const ActiveMasks& masks, ExecContext* ctx, BitMat* bm) {
  ScratchPositions scratch(ctx);
  for (const auto& [id, row] : rows) {
    if (masks.row_mask != nullptr &&
        (id >= masks.row_mask->size() || !masks.row_mask->Get(id))) {
      continue;
    }
    if (masks.col_mask != nullptr) {
      SetRowMasked(id, row, *masks.col_mask, scratch.get(), bm);
    } else {
      bm->SetRow(id, row);
    }
  }
}

// Sets the single-column rows of `bm` from the set bits of `row`, honoring
// the row-domain mask.
void FillColumnVector(const CompressedRow& row, const ActiveMasks& masks,
                      BitMat* bm) {
  row.ForEachSetBit([&](uint32_t id) {
    if (masks.row_mask != nullptr &&
        (id >= masks.row_mask->size() || !masks.row_mask->Get(id))) {
      return;
    }
    bm->SetRow(id, CompressedRow::FromPositions({0}));
  });
}

// Restricts a same-variable TP (?x p ?x) to its diagonal: only IDs in the
// shared Vso range can denote the same term on both dimensions.
void KeepDiagonal(uint32_t num_common, BitMat* bm) {
  uint32_t n = std::min(bm->num_rows(), num_common);
  for (uint32_t r = 0; r < bm->num_rows(); ++r) {
    if (bm->Row(r).IsEmpty()) continue;
    if (r < n && bm->Row(r).Test(r)) {
      bm->SetRow(r, CompressedRow::FromPositions({r}));
    } else {
      bm->SetRow(r, CompressedRow());
    }
  }
}

}  // namespace

Bitvector AlignMask(const Bitvector& src, DomainKind src_kind,
                    DomainKind dst_kind, uint32_t num_common,
                    uint32_t dst_size) {
  Bitvector out;
  AlignMaskInto(src, src_kind, dst_kind, num_common, dst_size, &out);
  return out;
}

void AlignMaskInto(const Bitvector& src, DomainKind src_kind,
                   DomainKind dst_kind, uint32_t num_common,
                   uint32_t dst_size, Bitvector* out) {
  if (src_kind == DomainKind::kPredicate || dst_kind == DomainKind::kPredicate) {
    if (src_kind != dst_kind) {
      throw UnsupportedQueryError(
          "joins between predicate-position and subject/object-position "
          "variables are not supported (Section 5 limitation)");
    }
  }
  // Word-wise prefix copy, then Vso truncation for subject<->object
  // conversions (only the shared ID range is join-compatible).
  out->AssignResized(src, dst_size);
  if (src_kind != dst_kind &&
      (src_kind == DomainKind::kSubject || src_kind == DomainKind::kObject)) {
    out->TruncateBitsFrom(num_common);
  }
}

namespace {

TpBitMat LoadTpBitMatImpl(const TripleIndex& index, const Dictionary& dict,
                          const TriplePattern& tp, bool prefer_subject_rows,
                          const ActiveMasks& masks, ExecContext* ctx) {
  const bool sv = tp.s.is_var, pv = tp.p.is_var, ov = tp.o.is_var;
  if (sv && pv && ov) {
    throw UnsupportedQueryError(
        "triple patterns with all three positions variable are not "
        "supported: " +
        tp.ToString());
  }

  TpBitMat out;
  auto subject_id = [&]() -> std::optional<uint32_t> {
    return dict.SubjectId(tp.s.term);
  };
  auto predicate_id = [&]() -> std::optional<uint32_t> {
    return dict.PredicateId(tp.p.term);
  };
  auto object_id = [&]() -> std::optional<uint32_t> {
    return dict.ObjectId(tp.o.term);
  };

  if (!pv) {
    std::optional<uint32_t> p = predicate_id();
    if (sv && ov) {
      // (?a :p ?b): full predicate slice, orientation by the jvar order.
      // Pin the slice across the copy-out so a concurrent snapshot spill
      // cannot free the row vectors mid-iteration (mapped mode).
      TripleIndex::SlicePin pin = p ? index.Slice(*p) : nullptr;
      if (prefer_subject_rows) {
        out.row_kind = DomainKind::kSubject;
        out.col_kind = DomainKind::kObject;
        out.row_var = tp.s.var;
        out.col_var = tp.o.var;
        out.bm = BitMat(index.num_subjects(), index.num_objects());
        if (pin) FillRows(pin->so_rows, masks, ctx, &out.bm);
      } else {
        out.row_kind = DomainKind::kObject;
        out.col_kind = DomainKind::kSubject;
        out.row_var = tp.o.var;
        out.col_var = tp.s.var;
        out.bm = BitMat(index.num_objects(), index.num_subjects());
        if (pin) FillRows(pin->os_rows, masks, ctx, &out.bm);
      }
      if (tp.s.var == tp.o.var) KeepDiagonal(index.num_common(), &out.bm);
      return out;
    }
    if (sv) {
      // (?a :p :o): one row of the P-S BitMat of :o == OsRow(p, o).
      out.row_kind = DomainKind::kSubject;
      out.row_var = tp.s.var;
      out.bm = BitMat(index.num_subjects(), 1);
      std::optional<uint32_t> o = object_id();
      if (p && o) {
        TripleIndex::SlicePin pin = index.Slice(*p);
        FillColumnVector(TripleIndex::FindRowIn(pin->os_rows, *o), masks,
                         &out.bm);
      }
      return out;
    }
    if (ov) {
      // (:s :p ?b): one row of the P-O BitMat of :s == SoRow(p, s).
      out.row_kind = DomainKind::kObject;
      out.row_var = tp.o.var;
      out.bm = BitMat(index.num_objects(), 1);
      std::optional<uint32_t> s = subject_id();
      if (p && s) {
        TripleIndex::SlicePin pin = index.Slice(*p);
        FillColumnVector(TripleIndex::FindRowIn(pin->so_rows, *s), masks,
                         &out.bm);
      }
      return out;
    }
    // Fully fixed (:s :p :o): a 1x1 existence matrix.
    out.bm = BitMat(1, 1);
    std::optional<uint32_t> s = subject_id();
    std::optional<uint32_t> o = object_id();
    if (p && s && o) {
      TripleIndex::SlicePin pin = index.Slice(*p);
      if (TripleIndex::FindRowIn(pin->so_rows, *s).Test(*o)) {
        out.bm.SetRow(0, CompressedRow::FromPositions({0}));
      }
    }
    return out;
  }

  // Variable predicate.
  if (!sv && ov) {
    // (:s ?p ?b): the P-O BitMat of :s.
    out.row_kind = DomainKind::kPredicate;
    out.col_kind = DomainKind::kObject;
    out.row_var = tp.p.var;
    out.col_var = tp.o.var;
    out.bm = BitMat(index.num_predicates(), index.num_objects());
    std::optional<uint32_t> s = subject_id();
    if (s) {
      ScratchPositions scratch(ctx);
      for (uint32_t p = 0; p < index.num_predicates(); ++p) {
        if (masks.row_mask != nullptr &&
            (p >= masks.row_mask->size() || !masks.row_mask->Get(p))) {
          continue;
        }
        TripleIndex::SlicePin pin = index.Slice(p);
        const CompressedRow& row = TripleIndex::FindRowIn(pin->so_rows, *s);
        if (row.IsEmpty()) continue;
        if (masks.col_mask != nullptr) {
          SetRowMasked(p, row, *masks.col_mask, scratch.get(), &out.bm);
        } else {
          out.bm.SetRow(p, row);
        }
      }
    }
    return out;
  }
  if (sv && !ov) {
    // (?a ?p :o): the P-S BitMat of :o.
    out.row_kind = DomainKind::kPredicate;
    out.col_kind = DomainKind::kSubject;
    out.row_var = tp.p.var;
    out.col_var = tp.s.var;
    out.bm = BitMat(index.num_predicates(), index.num_subjects());
    std::optional<uint32_t> o = object_id();
    if (o) {
      ScratchPositions scratch(ctx);
      for (uint32_t p = 0; p < index.num_predicates(); ++p) {
        if (masks.row_mask != nullptr &&
            (p >= masks.row_mask->size() || !masks.row_mask->Get(p))) {
          continue;
        }
        TripleIndex::SlicePin pin = index.Slice(p);
        const CompressedRow& row = TripleIndex::FindRowIn(pin->os_rows, *o);
        if (row.IsEmpty()) continue;
        if (masks.col_mask != nullptr) {
          SetRowMasked(p, row, *masks.col_mask, scratch.get(), &out.bm);
        } else {
          out.bm.SetRow(p, row);
        }
      }
    }
    return out;
  }
  // (:s ?p :o): predicates linking the fixed pair.
  out.row_kind = DomainKind::kPredicate;
  out.row_var = tp.p.var;
  out.bm = BitMat(index.num_predicates(), 1);
  std::optional<uint32_t> s = subject_id();
  std::optional<uint32_t> o = object_id();
  if (s && o) {
    for (uint32_t p = 0; p < index.num_predicates(); ++p) {
      if (masks.row_mask != nullptr &&
          (p >= masks.row_mask->size() || !masks.row_mask->Get(p))) {
        continue;
      }
      TripleIndex::SlicePin pin = index.Slice(p);
      if (TripleIndex::FindRowIn(pin->so_rows, *s).Test(*o)) {
        out.bm.SetRow(p, CompressedRow::FromPositions({0}));
      }
    }
  }
  return out;
}

}  // namespace

TpBitMat LoadTpBitMat(const TripleIndex& index, const Dictionary& dict,
                      const TriplePattern& tp, bool prefer_subject_rows,
                      const ActiveMasks& masks, ExecContext* ctx) {
  // Materialization is a pure read of the index: a transient fault injected
  // at tp_loader.load (or bubbling up from a slice materialization) leaves
  // nothing partial behind, so the whole load is safely retryable.
  return RetryTransient([&] {
    FaultRegistry::Instance().MaybeInject(FaultSiteId::kTpLoaderLoad);
    return LoadTpBitMatImpl(index, dict, tp, prefer_subject_rows, masks, ctx);
  });
}

}  // namespace lbr
