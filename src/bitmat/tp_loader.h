#ifndef LBR_BITMAT_TP_LOADER_H_
#define LBR_BITMAT_TP_LOADER_H_

#include <optional>
#include <stdexcept>
#include <string>

#include "bitmat/bitmat.h"
#include "bitmat/triple_index.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "util/exec_context.h"

namespace lbr {

/// Which value domain a BitMat dimension ranges over. The subject and object
/// domains share the low `|Vso|` ID range (Appendix D); the predicate domain
/// is disjoint from both; kUnit marks a degenerate single-slot dimension
/// (TPs with fewer than two variables).
enum class DomainKind : uint8_t {
  kSubject = 0,
  kObject = 1,
  kPredicate = 2,
  kUnit = 3,
};

/// Thrown for queries the LBR prototype rejects (e.g. TPs with all three
/// positions variable, or joins between a predicate-position variable and a
/// subject/object-position variable — Section 5's stated limitations).
class UnsupportedQueryError : public std::runtime_error {
 public:
  explicit UnsupportedQueryError(const std::string& msg)
      : std::runtime_error(msg) {}
};

/// A triple pattern's loaded BitMat plus the mapping from its dimensions to
/// query variables. `row_var`/`col_var` are empty when the corresponding
/// dimension is kUnit.
struct TpBitMat {
  BitMat bm;
  DomainKind row_kind = DomainKind::kUnit;
  DomainKind col_kind = DomainKind::kUnit;
  std::string row_var;
  std::string col_var;

  bool HasVar(const std::string& v) const {
    return (!row_var.empty() && row_var == v) ||
           (!col_var.empty() && col_var == v);
  }
  /// Dimension of variable `v` in this BitMat. Precondition: HasVar(v).
  Dim DimOf(const std::string& v) const {
    return (!row_var.empty() && row_var == v) ? Dim::kRow : Dim::kCol;
  }
  DomainKind KindOf(const std::string& v) const {
    return DimOf(v) == Dim::kRow ? row_kind : col_kind;
  }
};

/// Optional pre-loading restrictions for active pruning (Section 5): bit
/// arrays over the row/col domains of the BitMat being loaded; triples whose
/// coordinate is 0 in a given mask are not loaded.
struct ActiveMasks {
  const Bitvector* row_mask = nullptr;
  const Bitvector* col_mask = nullptr;
};

/// Converts a mask over `src_kind`'s domain to a mask over `dst_kind`'s
/// domain of size `dst_size`. Same-kind masks copy through; subject<->object
/// conversions keep only the join-compatible IDs below `num_common`
/// (Appendix D's Vso range). Predicate-domain masks never convert to S/O —
/// that is an unsupported join and throws UnsupportedQueryError.
Bitvector AlignMask(const Bitvector& src, DomainKind src_kind,
                    DomainKind dst_kind, uint32_t num_common,
                    uint32_t dst_size);

/// Allocation-free AlignMask: writes the aligned mask into `*out`, reusing
/// its capacity. `out` must not alias `src`.
void AlignMaskInto(const Bitvector& src, DomainKind src_kind,
                   DomainKind dst_kind, uint32_t num_common,
                   uint32_t dst_size, Bitvector* out);

/// Stores `row` masked by `col_mask` as row `id` of `*bm`; rows with no
/// surviving bit are skipped without copying. The single implementation of
/// the active-pruning column-masking protocol, shared by the loader and the
/// TP cache. `scratch` is reused across calls (pass one in loops).
inline void SetRowMasked(uint32_t id, const CompressedRow& row,
                         const Bitvector& col_mask,
                         std::vector<uint32_t>* scratch, BitMat* bm) {
  if (!row.IntersectsWith(col_mask)) return;
  CompressedRow masked = row;
  masked.AndWithInPlace(col_mask, scratch);
  bm->SetRow(id, std::move(masked));
}

/// Handle-sharing variant of SetRowMasked for copy-on-write sources (the
/// TP cache's masked copy-out): when the mask drops no bit of `row`, the
/// shared handle itself is stored — no payload copy, no re-encode; only
/// rows that actually lose bits are rebuilt. `row` must be non-null.
inline void SetRowMaskedShared(uint32_t id, const BitMat::RowHandle& row,
                               const Bitvector& col_mask,
                               std::vector<uint32_t>* scratch, BitMat* bm) {
  BitMat::RowHandle masked = BitMat::MaskedRow(row, col_mask, scratch);
  if (masked != nullptr) bm->SetRowShared(id, std::move(masked));
}

/// Loads the BitMat holding all triples matching `tp` (Section 5's `init`
/// step). `prefer_subject_rows` picks the S-O (true) or O-S (false)
/// orientation for two-variable TPs with a fixed predicate — the engine
/// derives it from the bottom-up join-variable order. Fixed terms unknown to
/// the dictionary yield an empty BitMat of the right shape.
///
/// `ctx` (optional) supplies pooled scratch for the active-pruning row
/// masking; without it each masked row allocates its own kept-position
/// buffer.
///
/// Throws UnsupportedQueryError for (?s ?p ?o) patterns.
TpBitMat LoadTpBitMat(const TripleIndex& index, const Dictionary& dict,
                      const TriplePattern& tp, bool prefer_subject_rows,
                      const ActiveMasks& masks = {},
                      ExecContext* ctx = nullptr);

}  // namespace lbr

#endif  // LBR_BITMAT_TP_LOADER_H_
