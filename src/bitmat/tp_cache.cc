#include "bitmat/tp_cache.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>

#include "util/fault_injection.h"

namespace lbr {

namespace {

// Re-derives the variable name of a cached dimension from its domain kind:
// the loader maps kSubject dims to the subject variable, kObject to the
// object variable, kPredicate to the predicate variable.
std::string VarForKind(const TriplePattern& tp, DomainKind kind) {
  switch (kind) {
    case DomainKind::kSubject:
      return tp.s.is_var ? tp.s.var : std::string();
    case DomainKind::kObject:
      return tp.o.is_var ? tp.o.var : std::string();
    case DomainKind::kPredicate:
      return tp.p.is_var ? tp.p.var : std::string();
    case DomainKind::kUnit:
      return std::string();
  }
  return std::string();
}

// A snapshot with the caller's variable names re-derived from the cached
// dimension kinds (the key normalizes names away). O(rows) handle bumps,
// no payload copy.
TpBitMat SnapshotFor(const TpBitMat& cached, const TriplePattern& tp) {
  TpBitMat copy = cached;
  copy.row_var = VarForKind(tp, copy.row_kind);
  copy.col_var = VarForKind(tp, copy.col_kind);
  return copy;
}

// Approximate heap bytes of a cached TpBitMat: handle-vector storage plus
// the owned payload of every non-empty row. Rows that are zero-copy views
// into a mapped snapshot own nothing and cost only their handle — exactly
// the marginal heap the entry pins, which is what the shared meter tracks.
uint64_t TpBitMatHeapBytes(const TpBitMat& t) {
  uint64_t bytes = sizeof(TpBitMat) +
                   static_cast<uint64_t>(t.bm.num_rows()) *
                       sizeof(BitMat::RowHandle);
  t.bm.NonEmptyRows().ForEachSetBit([&](uint32_t r) {
    bytes += sizeof(CompressedRow) + t.bm.Row(r).OwnedHeapBytes();
  });
  return bytes;
}

}  // namespace

TpCache::TpCache(uint64_t triple_budget, size_t num_shards)
    : budget_(triple_budget) {
  if (num_shards < 1) num_shards = 1;
  // Degenerate tiny budgets hold so few entries that striping only blurs
  // the LRU order; collapse to one stripe (also what pins the legacy
  // eviction tests to exact single-list semantics).
  if (triple_budget / num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Legacy LBR_FAULT=<n> form: fail every n-th load of *this* cache
  // instance (per-instance counters, read at construction — older chaos
  // scripts rely on both). The site:spec syntax is the registry's to
  // parse; anything else that is not a clean positive integer is rejected
  // loudly instead of the silent strtol it used to be.
  if (const char* fault = std::getenv("LBR_FAULT")) {
    uint32_t rate = 0;
    if (FaultRegistry::LooksLikeSiteSpec(fault)) {
      // Site-spec syntax — handled (and validated) by FaultRegistry.
    } else if (FaultRegistry::ParseLegacyRate(fault, &rate)) {
      fault_rate_.store(rate, std::memory_order_relaxed);
    } else {
      std::fprintf(stderr,
                   "[lbr] LBR_FAULT: rejecting legacy rate '%s': not a "
                   "positive integer\n",
                   fault);
    }
  }
}

void TpCache::MaybeInjectFault() {
  // Global registry site first (armed via LBR_FAULT=tp_cache.load:... or
  // the test API), then the per-instance legacy rate.
  FaultRegistry::Instance().MaybeInject(FaultSiteId::kTpCacheLoad);
  uint32_t rate = fault_rate_.load(std::memory_order_relaxed);
  if (rate == 0) return;
  uint64_t seq = load_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seq % rate == 0) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    throw FaultInjectedError(FaultSiteId::kTpCacheLoad, "tp_cache.load",
                             /*transient=*/true);
  }
}

std::string TpCache::KeyFor(const TriplePattern& tp,
                            bool prefer_subject_rows) {
  // Variable names do not affect the loaded bits, only the var<->dimension
  // mapping, which the caller re-derives; normalize them out of the key so
  // that (?a :p ?b) and (?x :p ?y) share an entry.
  auto norm = [](const PatternTerm& t, const char* placeholder) {
    return t.is_var ? std::string(placeholder) : t.term.ToString();
  };
  std::string key;
  key.reserve(64);
  key += norm(tp.s, "?s");
  key += '\x1f';
  key += norm(tp.p, "?p");
  key += '\x1f';
  key += norm(tp.o, "?o");
  key += '\x1f';
  // Same-variable TPs load a diagonal; they must not share entries with
  // distinct-variable TPs.
  key += (tp.s.is_var && tp.o.is_var && tp.s.var == tp.o.var) ? "diag"
                                                              : "full";
  key += '\x1f';
  key += prefer_subject_rows ? 'S' : 'O';
  return key;
}

TpCache::Shard& TpCache::ShardFor(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::unique_lock<std::mutex> TpCache::LockShard(Shard* shard) {
  std::unique_lock<std::mutex> lk(shard->mu, std::try_to_lock);
  if (!lk.owns_lock()) {
    contention_.fetch_add(1, std::memory_order_relaxed);
    lk.lock();
  }
  return lk;
}

TpBitMat TpCache::GetOrLoad(const TripleIndex& index, const Dictionary& dict,
                            const TriplePattern& tp,
                            bool prefer_subject_rows) {
  std::string key = KeyFor(tp, prefer_subject_rows);
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lk = LockShard(&shard);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    // O(1) LRU touch: relink the node, no allocation or string copy.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return SnapshotFor(it->second.mat, tp);
  }
  return LoadAndPublish(&shard, std::move(lk), key, index, dict, tp,
                        prefer_subject_rows);
}

TpBitMat TpCache::LoadAndPublish(Shard* shard,
                                 std::unique_lock<std::mutex> lk,
                                 const std::string& key,
                                 const TripleIndex& index,
                                 const Dictionary& dict,
                                 const TriplePattern& tp,
                                 bool prefer_subject_rows) {
  // Single-flight: if another thread is already loading this key, sleep
  // until its load lands and take the result as a hit — one index scan
  // serves every concurrent caller.
  bool waited = false;
  while (shard->loading.count(key) != 0) {
    waited = true;
    flight_waits_.fetch_add(1, std::memory_order_relaxed);
    shard->cv.wait(lk);
    auto it = shard->entries.find(key);
    if (it != shard->entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      shard->lru.splice(shard->lru.begin(), shard->lru, it->second.lru_it);
      return SnapshotFor(it->second.mat, tp);
    }
  }
  if (waited) {
    // The in-flight load completed but was not published (over budget, or
    // it threw): the key is evidently not cacheable right now, so load
    // directly without claiming single-flight — otherwise N waiters on a
    // hot uncacheable key would take turns doing N sequential index scans.
    misses_.fetch_add(1, std::memory_order_relaxed);
    lk.unlock();
    return LoadTpBitMat(index, dict, tp, prefer_subject_rows);
  }
  shard->loading.insert(key);
  misses_.fetch_add(1, std::memory_order_relaxed);
  lk.unlock();

  TpBitMat loaded;
  try {
    // Transient-fault boundary: an injected cache-load fault (site or
    // legacy per-instance rate) is retried with bounded backoff. Nothing
    // partial escapes a failed attempt — the load builds into a local.
    loaded = RetryTransient([&] {
      MaybeInjectFault();
      TpBitMat fresh = LoadTpBitMat(index, dict, tp, prefer_subject_rows);
      // Warm the column-fold memo before publication: entries are frozen
      // once visible to other threads (even const folds write the memo),
      // and warm memos make every future snapshot's first fold a word copy.
      fresh.bm.MemoizeColFold();
      return fresh;
    });
  } catch (...) {
    lk.lock();
    shard->loading.erase(key);
    shard->cv.notify_all();
    throw;
  }

  uint64_t cost = loaded.bm.Count();
  uint64_t bytes = meter_ != nullptr ? TpBitMatHeapBytes(loaded) : 0;
  lk.lock();
  shard->loading.erase(key);
  if (cost <= budget_) {
    shard->lru.push_front(key);
    shard->entries[key] = Entry{loaded, cost, bytes, shard->lru.begin()};
    shard->held += cost;
    held_.fetch_add(cost, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
    if (meter_ != nullptr) meter_->ChargeMemory(bytes);
    EvictToBudget(shard);
  }
  shard->cv.notify_all();
  return loaded;
}

TpBitMat TpCache::GetOrLoadMasked(const TripleIndex& index,
                                  const Dictionary& dict,
                                  const TriplePattern& tp,
                                  bool prefer_subject_rows,
                                  const ActiveMasks& masks,
                                  ExecContext* ctx) {
  if (masks.row_mask == nullptr && masks.col_mask == nullptr) {
    return GetOrLoad(index, dict, tp, prefer_subject_rows);
  }
  std::string key = KeyFor(tp, prefer_subject_rows);
  Shard& shard = ShardFor(key);
  TpBitMat snapshot;
  {
    std::unique_lock<std::mutex> lk = LockShard(&shard);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      // Miss: load masked directly (cheapest) and leave warming to
      // unmasked queries — a masked load is query-specific and never
      // inserted, so it takes no single-flight slot either.
      misses_.fetch_add(1, std::memory_order_relaxed);
      lk.unlock();
      return LoadTpBitMat(index, dict, tp, prefer_subject_rows, masks, ctx);
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    // Take a plain CoW snapshot under the lock (O(rows) handle bumps) and
    // run the masking on it outside, keeping the stripe hot.
    snapshot = SnapshotFor(it->second.mat, tp);
  }

  TpBitMat out;
  out.row_kind = snapshot.row_kind;
  out.col_kind = snapshot.col_kind;
  out.row_var = snapshot.row_var;
  out.col_var = snapshot.col_var;
  out.bm = BitMat(snapshot.bm.num_rows(), snapshot.bm.num_cols());
  ScratchPositions scratch(ctx);
  snapshot.bm.NonEmptyRows().ForEachSetBit([&](uint32_t r) {
    if (masks.row_mask != nullptr &&
        (r >= masks.row_mask->size() || !masks.row_mask->Get(r))) {
      return;
    }
    const BitMat::RowHandle& row = snapshot.bm.SharedRow(r);
    if (masks.col_mask == nullptr) {
      out.bm.SetRowShared(r, row);  // row survives whole: share the handle
    } else {
      SetRowMaskedShared(r, row, *masks.col_mask, scratch.get(), &out.bm);
    }
  });
  return out;
}

void TpCache::EvictOne(Shard* shard) {
  const std::string& victim = shard->lru.back();
  auto it = shard->entries.find(victim);
  shard->held -= it->second.cost;
  held_.fetch_sub(it->second.cost, std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  if (meter_ != nullptr) meter_->ReleaseMemory(it->second.bytes);
  shard->entries.erase(it);
  shard->lru.pop_back();
}

void TpCache::EvictToBudget(Shard* shard) {
  // The budget is global: drain this stripe's LRU tail first — but never
  // the just-inserted front node (admission guarantees it fits the budget
  // alone; evicting the MRU entry to protect stale entries elsewhere
  // would invert LRU) — then reclaim other stripes' tails. Other stripes
  // are only try-locked: blocking while holding our own stripe would
  // deadlock against a thread doing the same from the opposite side; a
  // stripe we skip settles the remaining debt on its own next insert.
  while (held_.load(std::memory_order_relaxed) > budget_ &&
         shard->lru.size() > 1) {
    EvictOne(shard);
  }
  for (auto& other_ptr : shards_) {
    if (held_.load(std::memory_order_relaxed) <= budget_) return;
    Shard* other = other_ptr.get();
    if (other == shard) continue;
    std::unique_lock<std::mutex> other_lk(other->mu, std::try_to_lock);
    if (!other_lk.owns_lock()) continue;
    while (held_.load(std::memory_order_relaxed) > budget_ &&
           !other->lru.empty()) {
      EvictOne(other);
    }
  }
}

void TpCache::Clear() {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lk = LockShard(shard.get());
    held_.fetch_sub(shard->held, std::memory_order_relaxed);
    entries_.fetch_sub(shard->entries.size(), std::memory_order_relaxed);
    if (meter_ != nullptr) {
      for (const auto& [key, entry] : shard->entries) {
        (void)key;
        meter_->ReleaseMemory(entry.bytes);
      }
    }
    shard->held = 0;
    shard->entries.clear();
    shard->lru.clear();
  }
}

void TpCache::SetMemoryAccounting(QueryControl* meter,
                                  uint64_t budget_bytes) {
  meter_ = meter;
  byte_budget_ = budget_bytes;
}

uint64_t TpCache::SpillToFit() {
  if (meter_ == nullptr || byte_budget_ == 0) return 0;
  uint64_t released = 0;
  // Walk the stripes evicting LRU tails until the *shared* meter fits the
  // budget. Try-lock only: the caller may be the index's spill pass running
  // under memory pressure mid-query, and blocking on a stripe a loading
  // thread holds would stall the very query the spill serves.
  for (auto& shard_ptr : shards_) {
    if (meter_->memory_used() <= byte_budget_) break;
    Shard* shard = shard_ptr.get();
    std::unique_lock<std::mutex> lk(shard->mu, std::try_to_lock);
    if (!lk.owns_lock()) continue;
    while (meter_->memory_used() > byte_budget_ && !shard->lru.empty()) {
      auto it = shard->entries.find(shard->lru.back());
      released += it->second.bytes;
      EvictOne(shard);
      spill_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return released;
}

}  // namespace lbr
