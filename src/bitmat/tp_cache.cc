#include "bitmat/tp_cache.h"

namespace lbr {

namespace {

// Re-derives the variable name of a cached dimension from its domain kind:
// the loader maps kSubject dims to the subject variable, kObject to the
// object variable, kPredicate to the predicate variable.
std::string VarForKind(const TriplePattern& tp, DomainKind kind) {
  switch (kind) {
    case DomainKind::kSubject:
      return tp.s.is_var ? tp.s.var : std::string();
    case DomainKind::kObject:
      return tp.o.is_var ? tp.o.var : std::string();
    case DomainKind::kPredicate:
      return tp.p.is_var ? tp.p.var : std::string();
    case DomainKind::kUnit:
      return std::string();
  }
  return std::string();
}

}  // namespace

std::string TpCache::KeyFor(const TriplePattern& tp,
                            bool prefer_subject_rows) {
  // Variable names do not affect the loaded bits, only the var<->dimension
  // mapping, which the caller re-derives; normalize them out of the key so
  // that (?a :p ?b) and (?x :p ?y) share an entry.
  auto norm = [](const PatternTerm& t, const char* placeholder) {
    return t.is_var ? std::string(placeholder) : t.term.ToString();
  };
  std::string key;
  key.reserve(64);
  key += norm(tp.s, "?s");
  key += '\x1f';
  key += norm(tp.p, "?p");
  key += '\x1f';
  key += norm(tp.o, "?o");
  key += '\x1f';
  // Same-variable TPs load a diagonal; they must not share entries with
  // distinct-variable TPs.
  key += (tp.s.is_var && tp.o.is_var && tp.s.var == tp.o.var) ? "diag"
                                                              : "full";
  key += '\x1f';
  key += prefer_subject_rows ? 'S' : 'O';
  return key;
}

TpBitMat TpCache::GetOrLoad(const TripleIndex& index, const Dictionary& dict,
                            const TriplePattern& tp,
                            bool prefer_subject_rows) {
  std::string key = KeyFor(tp, prefer_subject_rows);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    // O(1) LRU touch: relink the node, no allocation or string copy.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    // Return a CoW snapshot — O(rows) handle bumps, no payload copy — with
    // the caller's variable names re-derived from the dimension kinds (the
    // key normalizes names away).
    TpBitMat copy = it->second.mat;
    copy.row_var = VarForKind(tp, copy.row_kind);
    copy.col_var = VarForKind(tp, copy.col_kind);
    return copy;
  }
  ++misses_;
  TpBitMat loaded = LoadTpBitMat(index, dict, tp, prefer_subject_rows);
  uint64_t cost = loaded.bm.Count();
  if (cost <= budget_) {
    // Warm the column-fold memo before inserting: snapshots share it, so
    // every future hit starts with its first fold already memoized instead
    // of re-iterating rows once per query.
    loaded.bm.MemoizeColFold();
    lru_.push_front(key);
    entries_[key] = Entry{loaded, lru_.begin()};
    held_ += cost;
    EvictToBudget();
  }
  return loaded;
}

TpBitMat TpCache::GetOrLoadMasked(const TripleIndex& index,
                                  const Dictionary& dict,
                                  const TriplePattern& tp,
                                  bool prefer_subject_rows,
                                  const ActiveMasks& masks,
                                  ExecContext* ctx) {
  if (masks.row_mask == nullptr && masks.col_mask == nullptr) {
    return GetOrLoad(index, dict, tp, prefer_subject_rows);
  }
  std::string key = KeyFor(tp, prefer_subject_rows);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    // Miss: load masked directly (cheapest) and also warm the cache with an
    // unmasked load only if the budget allows a second load to pay off —
    // here we simply do the masked load and leave warming to unmasked
    // queries, avoiding double work on the critical path.
    ++misses_;
    return LoadTpBitMat(index, dict, tp, prefer_subject_rows, masks, ctx);
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);

  const TpBitMat& cached = it->second.mat;
  TpBitMat out;
  out.row_kind = cached.row_kind;
  out.col_kind = cached.col_kind;
  out.row_var = VarForKind(tp, cached.row_kind);
  out.col_var = VarForKind(tp, cached.col_kind);
  out.bm = BitMat(cached.bm.num_rows(), cached.bm.num_cols());
  ScratchPositions scratch(ctx);
  cached.bm.NonEmptyRows().ForEachSetBit([&](uint32_t r) {
    if (masks.row_mask != nullptr &&
        (r >= masks.row_mask->size() || !masks.row_mask->Get(r))) {
      return;
    }
    const BitMat::RowHandle& row = cached.bm.SharedRow(r);
    if (masks.col_mask == nullptr) {
      out.bm.SetRowShared(r, row);  // row survives whole: share the handle
    } else {
      SetRowMaskedShared(r, row, *masks.col_mask, scratch.get(), &out.bm);
    }
  });
  return out;
}

void TpCache::EvictToBudget() {
  while (held_ > budget_ && !lru_.empty()) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    held_ -= it->second.mat.bm.Count();
    entries_.erase(it);
    lru_.pop_back();
  }
}

void TpCache::Clear() {
  entries_.clear();
  lru_.clear();
  held_ = 0;
}

}  // namespace lbr
