#ifndef LBR_BITMAT_BITMAT_H_
#define LBR_BITMAT_BITMAT_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "util/bitvector.h"
#include "util/compressed_row.h"
#include "util/exec_context.h"

namespace lbr {

class ThreadPool;

/// Which BitMat dimension to retain in a fold / mask in an unfold.
enum class Dim : uint8_t {
  kRow = 0,
  kCol = 1,
};

/// A 2-D compressed bit matrix — one slice of the conceptual 3-D bitcube
/// (Section 4). Rows are hybrid-compressed (CompressedRow); the matrix keeps
/// a cached triple count and a condensed non-empty-row bit array so that
/// selectivity checks never scan payload (Appendix D's "meta-information").
///
/// The two primitives the whole engine is built on:
///  - fold(BM, dim)  == project the distinct values of that dimension
///                      (bitwise OR over the other dimension);
///  - unfold(BM, mask, dim) == clear every bit whose `dim` coordinate is 0
///                      in the mask (the semi-join step).
///
/// Ownership model (DESIGN.md §4): rows are shared **immutable** handles
/// (`RowHandle`). Copying a BitMat is O(rows) refcount bumps, and mutating
/// ops (`SetRow`, `Unfold`) replace only the handles of rows they actually
/// change — a copy-on-write discipline that makes TpCache hits near-free.
/// Every bit-changing op bumps `version()`; a per-matrix column-fold cache
/// stamped with the version lets `FoldInto(kCol)` return the memoized fold
/// without row iteration while the matrix is unchanged.
///
/// Thread confinement: mutating ops (`SetRow`, `Unfold`) require exclusive
/// ownership of the matrix. Concurrent *reads* — including `FoldInto`,
/// which writes the mutable fold memo under const — are safe: the memo is
/// published through a per-version atomic once-flag (DESIGN.md §7), so any
/// number of threads may fold one matrix at a time, as the wave scheduler's
/// shared-master semi-joins do. A writer must still be the only thread
/// touching the matrix (the scheduler's conflict rule guarantees it), and
/// the writer/reader handover needs external synchronization (the wave
/// barrier). Sharing row payload across thread-confined BitMat copies is
/// safe (handles are immutable and refcounts are atomic).
class BitMat {
 public:
  /// A shared immutable row. Null means an empty row (no set bits); a
  /// non-null handle is never mutated through — changed rows get a fresh
  /// handle instead.
  using RowHandle = std::shared_ptr<const CompressedRow>;

  BitMat() = default;
  /// Creates an empty matrix with the given dimensions.
  BitMat(uint32_t num_rows, uint32_t num_cols);

  uint32_t num_rows() const { return num_rows_; }
  uint32_t num_cols() const { return num_cols_; }

  /// Total set bits (== triples represented by this BitMat).
  uint64_t Count() const { return count_; }
  bool IsEmpty() const { return count_ == 0; }

  /// Replaces row `r`. `positions` must be sorted, duplicate-free, < cols.
  void SetRow(uint32_t r, const std::vector<uint32_t>& positions);
  /// Replaces row `r` with an already-compressed row.
  void SetRow(uint32_t r, CompressedRow row);
  /// Replaces row `r` with a shared handle (no payload copy). Empty rows
  /// are normalized to the null handle. Named separately from SetRow so a
  /// braced position list never overload-resolves against shared_ptr.
  void SetRowShared(uint32_t r, RowHandle row);

  const CompressedRow& Row(uint32_t r) const {
    static const CompressedRow kEmptyRow;
    return rows_[r] != nullptr ? *rows_[r] : kEmptyRow;
  }
  /// The shared handle of row `r` (null when empty). Lets callers alias the
  /// row into another BitMat without copying payload.
  const RowHandle& SharedRow(uint32_t r) const { return rows_[r]; }

  /// Bit test at (r, c). Out-of-range coordinates (either dimension) are
  /// false, not UB.
  bool Test(uint32_t r, uint32_t c) const {
    return r < num_rows_ && c < num_cols_ && rows_[r] != nullptr &&
           rows_[r]->Test(c);
  }

  /// Monotonically increasing mutation stamp: bumped by every op that
  /// changes bit content (`SetRow` always; `Unfold` when at least one bit
  /// was cleared). Reads never change it. Derived results memoized at
  /// version v stay valid exactly while version() == v.
  uint64_t version() const { return version_; }

  /// fold(BM, dim) -> bit array over that dimension (Section 4).
  Bitvector Fold(Dim retain) const;

  /// Fold into `*out` (resized + cleared), reusing its word capacity. Runs
  /// decode into whole words.
  ///
  /// Column folds are memoized on the second fold at an unchanged
  /// version(): the first fold after a mutation only records that it
  /// happened (fold-once-then-mutate patterns like the semi-join slave pay
  /// no memo cost), the second stores the result, and later calls copy the
  /// memo's words without touching any row. Concurrent callers are safe:
  /// the memo is published through an atomic once-flag, so racing folds
  /// either word-copy the published memo or compute into their own output
  /// (DESIGN.md §7). `ctx` (optional) only receives hit/miss/once
  /// telemetry. Row folds are the incrementally maintained
  /// NonEmptyRows() metadata and are always O(words); they bypass the
  /// cache counters.
  ///
  /// With a `pool`, a memo-miss column fold shards its row range across the
  /// pool's workers (per-worker partial folds merged with word-wide ORs);
  /// memo hits and row folds stay serial word copies. The matrix itself
  /// must still be confined to the calling thread — the workers only read
  /// the immutable row payload.
  void FoldInto(Dim retain, Bitvector* out, ExecContext* ctx = nullptr,
                ThreadPool* pool = nullptr) const;

  /// True iff the next FoldInto(kCol) would be served from the memo.
  bool ColFoldMemoized() const {
    return col_fold_.state.load(std::memory_order_acquire) ==
           FoldMemo::kPublished;
  }

  /// Computes and stores the column-fold memo immediately, bypassing the
  /// second-touch policy — for owners that know the fold will be reused
  /// (TpCache warms entries before inserting them so every snapshot of a
  /// warm cache starts memoized). No-op when already memoized.
  void MemoizeColFold(ThreadPool* pool = nullptr) const;

  /// Masks a non-null row handle: returns `row` itself when the mask drops
  /// no bit (callers keep sharing), null when nothing survives, or a fresh
  /// handle with the surviving bits. The single implementation of the CoW
  /// row-masking step, shared by Unfold and the TP cache's masked copy-out
  /// (SetRowMaskedShared). `scratch` keeps its capacity across calls.
  static RowHandle MaskedRow(const RowHandle& row, const Bitvector& mask,
                             std::vector<uint32_t>* scratch);

  /// unfold(BM, mask, dim): for every 0 in `mask`, clears all bits at that
  /// coordinate of `retain`. Updates counts and the non-empty-row cache.
  /// Copy-on-write: rows that lose no bit keep their shared handle (copies
  /// of this matrix stay aliased to them); only changed rows are re-encoded
  /// into fresh handles, through pooled `ctx` scratch when given.
  ///
  /// With a `pool`, the per-row masking is sharded across workers in
  /// 64-row-aligned chunks (so the non-empty-row bit array's words are
  /// never shared between workers); each chunk masks through its worker's
  /// own scratch arena. The count/version bookkeeping is merged on the
  /// calling thread.
  void Unfold(const Bitvector& mask, Dim retain, ExecContext* ctx = nullptr,
              ThreadPool* pool = nullptr);

  /// Condensed representation of the non-empty rows (Appendix D metadata);
  /// equal to Fold(Dim::kRow) but maintained incrementally.
  const Bitvector& NonEmptyRows() const { return non_empty_rows_; }

  /// Returns the transpose (rows<->cols). Used when the multi-way join needs
  /// column-keyed access to a TP whose BitMat is row-oriented.
  BitMat Transposed() const;

  /// Appends the (ascending) row indexes whose bit in column `c` is set —
  /// one transposed row, extracted without materializing the transpose.
  /// Cost is O(populated rows × row test), so callers that end up visiting
  /// many columns should fall forward to Transposed() (the multiway join's
  /// lazy per-column transpose cache does exactly that).
  void AppendColumnPositions(uint32_t c, std::vector<uint32_t>* out) const;

  /// A copy whose rows are freshly allocated instead of shared — the
  /// pre-CoW copying behavior. Kept for the ablation bench that quantifies
  /// what the CoW snapshot saves, and for callers that want to sever all
  /// payload aliasing. Note that severing aliasing does NOT make a BitMat
  /// shareable across threads: even const reads (FoldInto) update the
  /// mutable fold memo, so a BitMat object must stay confined to one
  /// thread (or be externally synchronized) regardless of how it was
  /// copied. Per-thread engines each load/copy their own matrices.
  BitMat DeepCopy() const;

  /// Calls fn(row, col) for every set bit in row-major order.
  template <typename Fn>
  void ForEachBit(Fn&& fn) const {
    for (uint32_t r = 0; r < num_rows_; ++r) {
      if (rows_[r] == nullptr) continue;
      rows_[r]->ForEachSetBit([&fn, r](uint32_t c) { fn(r, c); });
    }
  }

  /// Payload bytes across all rows (index-size accounting). Shared rows are
  /// counted once per referencing matrix (as-if-owned sizes).
  size_t PayloadBytes() const;

  /// Binary serialization.
  void WriteTo(std::ostream* out) const;
  static BitMat ReadFrom(std::istream* in);

  bool operator==(const BitMat& other) const;

 private:
  /// The raw column fold (resize + clear + OR of every non-empty row),
  /// shared by the miss path of FoldInto and by MemoizeColFold. Sharded
  /// across `pool` when given and the matrix is large enough to pay.
  void ComputeColFoldInto(Bitvector* out, ThreadPool* pool = nullptr) const;

  /// Records a bit-content change: bumps the version, drops the fold memo,
  /// and resets its once-flag to kIdle. Mutation requires exclusive
  /// ownership (no concurrent reader — the scheduler's conflict rule), so
  /// plain writes are safe here; the next readers observe the reset state
  /// through whatever barrier handed them the matrix.
  void Touch() {
    ++version_;
    col_fold_.bits.reset();
    col_fold_.state.store(FoldMemo::kIdle, std::memory_order_relaxed);
  }

  uint32_t num_rows_ = 0;
  uint32_t num_cols_ = 0;
  uint64_t count_ = 0;
  uint64_t version_ = 0;
  std::vector<RowHandle> rows_;
  Bitvector non_empty_rows_;

  /// Memoized column fold behind a per-version atomic once-flag
  /// (DESIGN.md §7). The state machine encodes the second-touch policy:
  ///
  ///   kIdle ──fold──> kMissed ──fold──> kComputing ──publish──> kPublished
  ///
  /// The kIdle→kMissed and kMissed→kComputing edges are CAS transitions,
  /// so exactly one fold per version records the miss and exactly one
  /// computes + stores the memo; concurrent losers fold into their own
  /// output without touching the memo (compute-locally, never blocking).
  /// `bits` is written only by the kComputing winner and read only after
  /// an acquire-load observes kPublished — release/acquire on `state` is
  /// the publication fence. Any mutation resets to kIdle under exclusive
  /// ownership (Touch), so matrices folded once and then mutated still
  /// never pay the memo's allocation + copy.
  struct FoldMemo {
    enum State : uint32_t {
      kIdle = 0,       ///< No fold at the current version yet.
      kMissed = 1,     ///< One fold ran; the next one stores the memo.
      kComputing = 2,  ///< A thread is computing + storing the memo.
      kPublished = 3,  ///< `bits` is valid for the current version.
    };
    std::shared_ptr<const Bitvector> bits;
    std::atomic<uint32_t> state{kIdle};

    FoldMemo() = default;
    /// Copies are taken under exclusive ownership of the source's owner
    /// (thread-confined snapshots), but tolerate a racing publisher by
    /// only reading `bits` behind an acquire-load of kPublished; an
    /// observed in-flight kComputing degrades to kMissed in the copy.
    FoldMemo& operator=(const FoldMemo& other) {
      uint32_t s = other.state.load(std::memory_order_acquire);
      bits = s == kPublished ? other.bits : nullptr;
      if (s == kComputing) s = kMissed;
      state.store(s, std::memory_order_relaxed);
      return *this;
    }
    FoldMemo(const FoldMemo& other) { *this = other; }
    FoldMemo(FoldMemo&& other) noexcept { *this = other; }
    FoldMemo& operator=(FoldMemo&& other) noexcept { return *this = other; }
  };
  mutable FoldMemo col_fold_;
};

}  // namespace lbr

#endif  // LBR_BITMAT_BITMAT_H_
