#ifndef LBR_BITMAT_BITMAT_H_
#define LBR_BITMAT_BITMAT_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/bitvector.h"
#include "util/compressed_row.h"
#include "util/exec_context.h"

namespace lbr {

/// Which BitMat dimension to retain in a fold / mask in an unfold.
enum class Dim : uint8_t {
  kRow = 0,
  kCol = 1,
};

/// A 2-D compressed bit matrix — one slice of the conceptual 3-D bitcube
/// (Section 4). Rows are hybrid-compressed (CompressedRow); the matrix keeps
/// a cached triple count and a condensed non-empty-row bit array so that
/// selectivity checks never scan payload (Appendix D's "meta-information").
///
/// The two primitives the whole engine is built on:
///  - fold(BM, dim)  == project the distinct values of that dimension
///                      (bitwise OR over the other dimension);
///  - unfold(BM, mask, dim) == clear every bit whose `dim` coordinate is 0
///                      in the mask (the semi-join step).
class BitMat {
 public:
  BitMat() = default;
  /// Creates an empty matrix with the given dimensions.
  BitMat(uint32_t num_rows, uint32_t num_cols);

  uint32_t num_rows() const { return num_rows_; }
  uint32_t num_cols() const { return num_cols_; }

  /// Total set bits (== triples represented by this BitMat).
  uint64_t Count() const { return count_; }
  bool IsEmpty() const { return count_ == 0; }

  /// Replaces row `r`. `positions` must be sorted, duplicate-free, < cols.
  void SetRow(uint32_t r, const std::vector<uint32_t>& positions);
  /// Replaces row `r` with an already-compressed row.
  void SetRow(uint32_t r, CompressedRow row);

  const CompressedRow& Row(uint32_t r) const { return rows_[r]; }

  /// Bit test at (r, c). Out-of-range coordinates (either dimension) are
  /// false, not UB.
  bool Test(uint32_t r, uint32_t c) const {
    return r < num_rows_ && c < num_cols_ && rows_[r].Test(c);
  }

  /// fold(BM, dim) -> bit array over that dimension (Section 4).
  Bitvector Fold(Dim retain) const;

  /// Allocation-free fold: writes the fold into `*out` (resized + cleared),
  /// reusing its word capacity. Runs decode into whole words.
  void FoldInto(Dim retain, Bitvector* out) const;

  /// unfold(BM, mask, dim): for every 0 in `mask`, clears all bits at that
  /// coordinate of `retain`. Updates counts and the non-empty-row cache.
  /// With a `ctx`, rows are re-encoded in place through pooled scratch —
  /// zero heap allocations per call once the arena is warm.
  void Unfold(const Bitvector& mask, Dim retain, ExecContext* ctx = nullptr);

  /// Condensed representation of the non-empty rows (Appendix D metadata);
  /// equal to Fold(Dim::kRow) but maintained incrementally.
  const Bitvector& NonEmptyRows() const { return non_empty_rows_; }

  /// Returns the transpose (rows<->cols). Used when the multi-way join needs
  /// column-keyed access to a TP whose BitMat is row-oriented.
  BitMat Transposed() const;

  /// Calls fn(row, col) for every set bit in row-major order.
  template <typename Fn>
  void ForEachBit(Fn&& fn) const {
    for (uint32_t r = 0; r < num_rows_; ++r) {
      rows_[r].ForEachSetBit([&fn, r](uint32_t c) { fn(r, c); });
    }
  }

  /// Payload bytes across all rows (index-size accounting).
  size_t PayloadBytes() const;

  /// Binary serialization.
  void WriteTo(std::ostream* out) const;
  static BitMat ReadFrom(std::istream* in);

  bool operator==(const BitMat& other) const;

 private:
  void RecomputeRowMeta(uint32_t r);

  uint32_t num_rows_ = 0;
  uint32_t num_cols_ = 0;
  uint64_t count_ = 0;
  std::vector<CompressedRow> rows_;
  Bitvector non_empty_rows_;
};

}  // namespace lbr

#endif  // LBR_BITMAT_BITMAT_H_
