#include "bitmat/triple_index.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace lbr {

namespace {
const CompressedRow kEmptyRow;

constexpr char kMagic[8] = {'L', 'B', 'R', 'I', 'D', 'X', '0', '1'};

void WriteRows(const std::vector<std::pair<uint32_t, CompressedRow>>& rows,
               std::ostream* out) {
  uint32_t n = static_cast<uint32_t>(rows.size());
  out->write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& [id, row] : rows) {
    out->write(reinterpret_cast<const char*>(&id), sizeof(id));
    row.WriteTo(out);
  }
}

void ReadRows(std::istream* in,
              std::vector<std::pair<uint32_t, CompressedRow>>* rows) {
  uint32_t n = 0;
  in->read(reinterpret_cast<char*>(&n), sizeof(n));
  rows->clear();
  rows->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t id = 0;
    in->read(reinterpret_cast<char*>(&id), sizeof(id));
    rows->emplace_back(id, CompressedRow::ReadFrom(in));
  }
}

}  // namespace

TripleIndex TripleIndex::Build(const Graph& graph) {
  TripleIndex idx;
  const Dictionary& dict = graph.dict();
  idx.num_subjects_ = dict.num_subjects();
  idx.num_predicates_ = dict.num_predicates();
  idx.num_objects_ = dict.num_objects();
  idx.num_common_ = dict.num_common();
  idx.num_triples_ = graph.num_triples();
  idx.pred_counts_.assign(idx.num_predicates_, 0);
  idx.preds_.resize(idx.num_predicates_);

  // Bucket triples by predicate in both orientations, then compress.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> by_pred(
      idx.num_predicates_);
  for (const Triple& t : graph.triples()) {
    by_pred[t.p].emplace_back(t.s, t.o);
    ++idx.pred_counts_[t.p];
  }

  for (uint32_t p = 0; p < idx.num_predicates_; ++p) {
    PredSlice& slice = idx.preds_[p];
    slice.non_empty_s.Resize(idx.num_subjects_);
    slice.non_empty_o.Resize(idx.num_objects_);
    auto& pairs = by_pred[p];

    // S-O orientation: group by subject. Input triples are (S,P,O)-sorted,
    // so pairs are already (s, o)-sorted.
    std::vector<uint32_t> cols;
    for (size_t i = 0; i < pairs.size();) {
      uint32_t s = pairs[i].first;
      cols.clear();
      while (i < pairs.size() && pairs[i].first == s) {
        cols.push_back(pairs[i].second);
        ++i;
      }
      slice.so_rows.emplace_back(s, CompressedRow::FromPositions(cols));
      slice.non_empty_s.Set(s);
    }

    // O-S orientation: re-sort by (o, s).
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second < b.second
                                            : a.first < b.first;
              });
    for (size_t i = 0; i < pairs.size();) {
      uint32_t o = pairs[i].second;
      cols.clear();
      while (i < pairs.size() && pairs[i].second == o) {
        cols.push_back(pairs[i].first);
        ++i;
      }
      slice.os_rows.emplace_back(o, CompressedRow::FromPositions(cols));
      slice.non_empty_o.Set(o);
    }
    pairs.clear();
    pairs.shrink_to_fit();
  }
  return idx;
}

const CompressedRow& TripleIndex::FindRow(
    const std::vector<std::pair<uint32_t, CompressedRow>>& rows, uint32_t id) {
  auto it = std::lower_bound(
      rows.begin(), rows.end(), id,
      [](const auto& pair, uint32_t key) { return pair.first < key; });
  if (it == rows.end() || it->first != id) return kEmptyRow;
  return it->second;
}

const CompressedRow& TripleIndex::SoRow(uint32_t p, uint32_t s) const {
  if (p >= num_predicates_) return kEmptyRow;
  return FindRow(preds_[p].so_rows, s);
}

const CompressedRow& TripleIndex::OsRow(uint32_t p, uint32_t o) const {
  if (p >= num_predicates_) return kEmptyRow;
  return FindRow(preds_[p].os_rows, o);
}

BitMat TripleIndex::PoBitMat(uint32_t s) const {
  BitMat bm(num_predicates_, num_objects_);
  for (uint32_t p = 0; p < num_predicates_; ++p) {
    const CompressedRow& row = SoRow(p, s);
    if (!row.IsEmpty()) bm.SetRow(p, row);
  }
  return bm;
}

BitMat TripleIndex::PsBitMat(uint32_t o) const {
  BitMat bm(num_predicates_, num_subjects_);
  for (uint32_t p = 0; p < num_predicates_; ++p) {
    const CompressedRow& row = OsRow(p, o);
    if (!row.IsEmpty()) bm.SetRow(p, row);
  }
  return bm;
}

TripleIndex::SizeReport TripleIndex::ComputeSizeReport() const {
  SizeReport report;
  uint64_t rle_so = 0, rle_os = 0;
  for (const PredSlice& slice : preds_) {
    for (const auto& [id, row] : slice.so_rows) {
      (void)id;
      report.so_bytes += row.PayloadBytes();
      rle_so +=
          CompressedRow::RleOnlyFromPositions(row.SetBits()).PayloadBytes();
      ++report.num_rows;
    }
    for (const auto& [id, row] : slice.os_rows) {
      (void)id;
      report.os_bytes += row.PayloadBytes();
      rle_os +=
          CompressedRow::RleOnlyFromPositions(row.SetBits()).PayloadBytes();
      ++report.num_rows;
    }
  }
  // All four families: SO + OS stored, P-O mirrors SO, P-S mirrors OS.
  report.hybrid_bytes = 2 * (report.so_bytes + report.os_bytes);
  report.rle_only_bytes = 2 * (rle_so + rle_os);
  return report;
}

void TripleIndex::WriteTo(std::ostream* out) const {
  out->write(kMagic, sizeof(kMagic));
  out->write(reinterpret_cast<const char*>(&num_subjects_), 4);
  out->write(reinterpret_cast<const char*>(&num_predicates_), 4);
  out->write(reinterpret_cast<const char*>(&num_objects_), 4);
  out->write(reinterpret_cast<const char*>(&num_common_), 4);
  out->write(reinterpret_cast<const char*>(&num_triples_), 8);
  for (uint32_t p = 0; p < num_predicates_; ++p) {
    out->write(reinterpret_cast<const char*>(&pred_counts_[p]), 8);
    WriteRows(preds_[p].so_rows, out);
    WriteRows(preds_[p].os_rows, out);
  }
}

TripleIndex TripleIndex::ReadFrom(std::istream* in) {
  char magic[8];
  in->read(magic, sizeof(magic));
  if (!std::equal(magic, magic + 8, kMagic)) {
    throw std::runtime_error("TripleIndex: bad magic");
  }
  TripleIndex idx;
  in->read(reinterpret_cast<char*>(&idx.num_subjects_), 4);
  in->read(reinterpret_cast<char*>(&idx.num_predicates_), 4);
  in->read(reinterpret_cast<char*>(&idx.num_objects_), 4);
  in->read(reinterpret_cast<char*>(&idx.num_common_), 4);
  in->read(reinterpret_cast<char*>(&idx.num_triples_), 8);
  idx.pred_counts_.resize(idx.num_predicates_);
  idx.preds_.resize(idx.num_predicates_);
  for (uint32_t p = 0; p < idx.num_predicates_; ++p) {
    in->read(reinterpret_cast<char*>(&idx.pred_counts_[p]), 8);
    PredSlice& slice = idx.preds_[p];
    ReadRows(in, &slice.so_rows);
    ReadRows(in, &slice.os_rows);
    slice.non_empty_s.Resize(idx.num_subjects_);
    slice.non_empty_o.Resize(idx.num_objects_);
    for (const auto& [id, row] : slice.so_rows) {
      (void)row;
      slice.non_empty_s.Set(id);
    }
    for (const auto& [id, row] : slice.os_rows) {
      (void)row;
      slice.non_empty_o.Set(id);
    }
  }
  return idx;
}

void TripleIndex::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("TripleIndex: cannot open " + path);
  WriteTo(&out);
}

TripleIndex TripleIndex::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("TripleIndex: cannot open " + path);
  return ReadFrom(&in);
}

}  // namespace lbr
