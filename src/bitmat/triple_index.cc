#include "bitmat/triple_index.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/fault_injection.h"

namespace lbr {

namespace {
const CompressedRow kEmptyRow;

constexpr char kMagic[8] = {'L', 'B', 'R', 'I', 'D', 'X', '0', '1'};

void WriteRows(const std::vector<std::pair<uint32_t, CompressedRow>>& rows,
               std::ostream* out) {
  uint32_t n = static_cast<uint32_t>(rows.size());
  out->write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& [id, row] : rows) {
    out->write(reinterpret_cast<const char*>(&id), sizeof(id));
    row.WriteTo(out);
  }
}

void ReadRows(std::istream* in,
              std::vector<std::pair<uint32_t, CompressedRow>>* rows) {
  uint32_t n = 0;
  in->read(reinterpret_cast<char*>(&n), sizeof(n));
  rows->clear();
  rows->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t id = 0;
    in->read(reinterpret_cast<char*>(&id), sizeof(id));
    rows->emplace_back(id, CompressedRow::ReadFrom(in));
  }
}

// Heap bytes of a materialized slice: vector storage plus owned payload.
// Views into the map own no payload, so a freshly materialized mapped
// slice costs ~sizeof(pair) per row regardless of payload size.
uint64_t SliceHeapBytes(const TripleIndex::PredSlice& slice) {
  uint64_t bytes = sizeof(TripleIndex::PredSlice);
  bytes += slice.so_rows.capacity() *
           sizeof(std::pair<uint32_t, CompressedRow>);
  bytes += slice.os_rows.capacity() *
           sizeof(std::pair<uint32_t, CompressedRow>);
  for (const auto& [id, row] : slice.so_rows) {
    (void)id;
    bytes += row.OwnedHeapBytes();
  }
  for (const auto& [id, row] : slice.os_rows) {
    (void)id;
    bytes += row.OwnedHeapBytes();
  }
  bytes += slice.so_extent_copy.capacity() * sizeof(uint32_t);
  bytes += slice.os_extent_copy.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace

TripleIndex TripleIndex::Build(const Graph& graph) {
  TripleIndex idx;
  const Dictionary& dict = graph.dict();
  idx.num_subjects_ = dict.num_subjects();
  idx.num_predicates_ = dict.num_predicates();
  idx.num_objects_ = dict.num_objects();
  idx.num_common_ = dict.num_common();
  idx.num_triples_ = graph.num_triples();
  idx.pred_counts_.assign(idx.num_predicates_, 0);
  idx.non_empty_s_.resize(idx.num_predicates_);
  idx.non_empty_o_.resize(idx.num_predicates_);
  idx.preds_.resize(idx.num_predicates_);

  // Bucket triples by predicate in both orientations, then compress.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> by_pred(
      idx.num_predicates_);
  for (const Triple& t : graph.triples()) {
    by_pred[t.p].emplace_back(t.s, t.o);
    ++idx.pred_counts_[t.p];
  }

  for (uint32_t p = 0; p < idx.num_predicates_; ++p) {
    auto slice = std::make_shared<PredSlice>();
    idx.non_empty_s_[p].Resize(idx.num_subjects_);
    idx.non_empty_o_[p].Resize(idx.num_objects_);
    auto& pairs = by_pred[p];

    // S-O orientation: group by subject. Input triples are (S,P,O)-sorted,
    // so pairs are already (s, o)-sorted.
    std::vector<uint32_t> cols;
    for (size_t i = 0; i < pairs.size();) {
      uint32_t s = pairs[i].first;
      cols.clear();
      while (i < pairs.size() && pairs[i].first == s) {
        cols.push_back(pairs[i].second);
        ++i;
      }
      slice->so_rows.emplace_back(s, CompressedRow::FromPositions(cols));
      idx.non_empty_s_[p].Set(s);
    }

    // O-S orientation: re-sort by (o, s).
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second < b.second
                                            : a.first < b.first;
              });
    for (size_t i = 0; i < pairs.size();) {
      uint32_t o = pairs[i].second;
      cols.clear();
      while (i < pairs.size() && pairs[i].second == o) {
        cols.push_back(pairs[i].first);
        ++i;
      }
      slice->os_rows.emplace_back(o, CompressedRow::FromPositions(cols));
      idx.non_empty_o_[p].Set(o);
    }
    pairs.clear();
    pairs.shrink_to_fit();
    idx.preds_[p] = std::move(slice);
  }
  return idx;
}

const CompressedRow& TripleIndex::FindRowIn(
    const std::vector<std::pair<uint32_t, CompressedRow>>& rows, uint32_t id) {
  auto it = std::lower_bound(
      rows.begin(), rows.end(), id,
      [](const auto& pair, uint32_t key) { return pair.first < key; });
  if (it == rows.end() || it->first != id) return kEmptyRow;
  return it->second;
}

const TripleIndex::PredSlice& TripleIndex::EnsureSlice(uint32_t p) const {
  if (backing_ == nullptr) return *preds_[p];
  // Mapped mode: materialize (or touch) under the per-predicate lock. The
  // returned reference stays valid until the slice is spilled — preds_[p]
  // keeps a strong ref until then.
  return *MaterializeSlice(p);
}

TripleIndex::SlicePin TripleIndex::Slice(uint32_t p) const {
  if (p >= num_predicates_) return nullptr;
  if (backing_ == nullptr) return preds_[p];
  return MaterializeSlice(p);
}

void TripleIndex::DecodeSliceRows(
    const SliceLoc& loc, const char* what,
    std::vector<std::pair<uint32_t, CompressedRow>>* rows,
    std::vector<uint32_t>* extent_copy) const {
  const uint8_t* base = backing_->file->data();
  const uint64_t dir_bytes =
      static_cast<uint64_t>(loc.dir_rows) * sizeof(SnapRowDirEntry);
  const uint8_t* dir = base + loc.dir_off;
  const uint32_t* extent =
      reinterpret_cast<const uint32_t*>(base + loc.extent_off);
  std::vector<uint8_t> dir_copy;
  if (extent_copy != nullptr) {
    // Paranoid mode: pread both regions into heap buffers and verify/decode
    // the copies — a storage-level fault surfaces as a clean pread error or
    // checksum mismatch here, never a SIGBUS on a later mapped access.
    dir_copy.resize(dir_bytes);
    if (dir_bytes > 0) {
      backing_->file->ReadAt(loc.dir_off, dir_bytes, dir_copy.data());
    }
    dir = dir_copy.data();
    extent_copy->resize(loc.extent_words);
    if (loc.extent_words > 0) {
      backing_->file->ReadAt(loc.extent_off, loc.extent_words * 4,
                             extent_copy->data());
    }
    extent = extent_copy->data();
  }
  // Lazy integrity: verify the directory and extent checksums on every
  // materialization (re-materializing after a spill re-reads from disk, so
  // re-verifying is the honest contract). The index.checksum fault site
  // forces the mismatch path — how tests exercise quarantine without
  // corrupting a real file.
  const bool forced =
      FaultRegistry::Instance().ShouldInject(FaultSiteId::kIndexChecksum);
  if (forced || Crc64(dir, dir_bytes) != loc.dir_crc) {
    throw SnapshotError(SnapshotErrorCode::kChecksum,
                        std::string("row directory of ") + what + " in " +
                            backing_->file->path());
  }
  if (Crc64(extent, loc.extent_words * 4) != loc.extent_crc) {
    throw SnapshotError(SnapshotErrorCode::kChecksum,
                        std::string("extent of ") + what + " in " +
                            backing_->file->path());
  }
  rows->clear();
  rows->reserve(loc.dir_rows);
  for (uint32_t i = 0; i < loc.dir_rows; ++i) {
    SnapRowDirEntry e =
        ReadPod<SnapRowDirEntry>(dir, i * sizeof(SnapRowDirEntry));
    if (e.payload_off_words + e.payload_words > loc.extent_words ||
        e.encoding > static_cast<uint8_t>(CompressedRow::Encoding::kRuns)) {
      throw SnapshotError(SnapshotErrorCode::kCorrupt,
                          std::string("row directory entry of ") + what +
                              " out of bounds in " + backing_->file->path());
    }
    rows->emplace_back(
        e.id, CompressedRow::View(
                  static_cast<CompressedRow::Encoding>(e.encoding),
                  e.first_bit != 0, e.count, extent + e.payload_off_words,
                  e.payload_words));
  }
}

std::shared_ptr<TripleIndex::PredSlice> TripleIndex::MaterializeSlice(
    uint32_t p) const {
  Backing& b = *backing_;
  // Degraded mode: a predicate that previously failed integrity checks is
  // quarantined — every subsequent touch fails fast with the same
  // structured error (this query fails; other predicates keep serving).
  if (b.quarantined[p].load(std::memory_order_relaxed) != 0) {
    throw SnapshotError(SnapshotErrorCode::kChecksum,
                        "predicate " + std::to_string(p) +
                            " quarantined after an earlier integrity "
                            "failure in " +
                            b.file->path());
  }
  b.last_touch[p].store(
      b.touch_seq.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  std::shared_ptr<PredSlice> result;
  {
    std::lock_guard<std::mutex> lk(b.mu[p]);
    if (preds_[p] != nullptr) return preds_[p];
    auto slice = std::make_shared<PredSlice>();
    try {
      // The decode pair is the transient-I/O boundary: a retry starts from
      // clear vectors, so nothing partial survives a failed attempt.
      RetryTransient([&] {
        FaultRegistry::Instance().MaybeInject(FaultSiteId::kIndexMaterialize);
        DecodeSliceRows(b.so_loc[p], "S-O slice", &slice->so_rows,
                        b.paranoid ? &slice->so_extent_copy : nullptr);
        DecodeSliceRows(b.os_loc[p], "O-S slice", &slice->os_rows,
                        b.paranoid ? &slice->os_extent_copy : nullptr);
      });
    } catch (const SnapshotError& e) {
      if (e.code() == SnapshotErrorCode::kChecksum ||
          e.code() == SnapshotErrorCode::kCorrupt) {
        if (b.quarantined[p].exchange(1, std::memory_order_relaxed) == 0) {
          b.quarantines.fetch_add(1, std::memory_order_relaxed);
        }
      }
      throw;
    }
    slice->heap_bytes = SliceHeapBytes(*slice);
    if (b.meter != nullptr) b.meter->ChargeMemory(slice->heap_bytes);
    b.resident_bytes.fetch_add(slice->heap_bytes, std::memory_order_relaxed);
    b.materializations.fetch_add(1, std::memory_order_relaxed);
    preds_[p] = slice;
    b.resident[p].store(1, std::memory_order_relaxed);
    result = std::move(slice);
  }
  // Budget enforcement outside mu[p] (the spiller try_locks slice mutexes,
  // so holding one here would only shrink its victim pool). `result` keeps
  // this slice's use_count above 1, so the pass can never reclaim the
  // slice we are about to hand out.
  if (b.budget_bytes > 0 && b.meter != nullptr &&
      b.meter->memory_used() > b.budget_bytes) {
    SpillToFit();
  }
  return result;
}

uint64_t TripleIndex::SpillToFit() const {
  if (backing_ == nullptr) return 0;
  Backing& b = *backing_;
  if (b.budget_bytes == 0 || b.meter == nullptr) return 0;
  std::unique_lock<std::mutex> spill_lk(b.spill_mu, std::try_to_lock);
  if (!spill_lk.owns_lock()) return 0;  // another thread is already spilling
  uint64_t released = 0;
  // Cold cache entries go first (the Database wires TpCache eviction here):
  // they are rebuildable from slices, slices are rebuildable from the map.
  if (b.meter->memory_used() > b.budget_bytes && b.spill_hook) {
    released += b.spill_hook();
  }
  // Bounded stall counter: consecutive victim attempts that found the
  // slice pinned or its lock contended. Once every candidate has been
  // tried fruitlessly, the remaining residency is all pinned working set
  // and the pass yields (the budget is best-effort under pins).
  uint32_t stalls = 0;
  while (b.meter->memory_used() > b.budget_bytes &&
         stalls <= num_predicates_) {
    // Pick the coldest materialized slice (lock-free flag scan).
    uint32_t victim = num_predicates_;
    uint64_t victim_touch = ~0ull;
    for (uint32_t p = 0; p < num_predicates_; ++p) {
      if (b.resident[p].load(std::memory_order_relaxed) == 0) continue;
      uint64_t t = b.last_touch[p].load(std::memory_order_relaxed);
      if (t < victim_touch) {
        victim_touch = t;
        victim = p;
      }
    }
    if (victim == num_predicates_) break;  // nothing materialized
    std::unique_lock<std::mutex> lk(b.mu[victim], std::try_to_lock);
    // use_count is stable here: new pins require mu[victim], which we
    // hold; concurrent pin releases only make a spillable slice look
    // pinned (conservative skip).
    if (lk.owns_lock() && preds_[victim] != nullptr &&
        preds_[victim].use_count() == 1) {
      uint64_t bytes = preds_[victim]->heap_bytes;
      preds_[victim].reset();
      b.resident[victim].store(0, std::memory_order_relaxed);
      b.meter->ReleaseMemory(bytes);
      b.resident_bytes.fetch_sub(bytes, std::memory_order_relaxed);
      b.spills.fetch_add(1, std::memory_order_relaxed);
      released += bytes;
      stalls = 0;
      // Return the extent pages to the file: the "spill back to the mapped
      // extents" half of the contract. Clean read-only pages just drop;
      // the next materialization faults them back from disk.
      const SliceLoc& so = b.so_loc[victim];
      const SliceLoc& os = b.os_loc[victim];
      b.file->Advise(so.extent_off, so.extent_words * 4,
                     MappedFile::Advice::kDontNeed);
      b.file->Advise(os.extent_off, os.extent_words * 4,
                     MappedFile::Advice::kDontNeed);
    } else {
      // Pinned or contended: stamp it recently-used so the next scan tries
      // the next-coldest candidate instead of retrying this one.
      b.last_touch[victim].store(
          b.touch_seq.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      ++stalls;
    }
  }
  return released;
}

void TripleIndex::SetMemoryBudget(uint64_t bytes, QueryControl* meter) {
  if (backing_ == nullptr) return;
  backing_->budget_bytes = bytes;
  backing_->meter = meter != nullptr ? meter : &backing_->own_meter;
  // Late installation: slices materialized before the budget was set (e.g.
  // by stats collection) join the accounting now.
  uint64_t resident =
      backing_->resident_bytes.load(std::memory_order_relaxed);
  if (resident > 0) backing_->meter->ChargeMemory(resident);
}

void TripleIndex::SetSpillHook(std::function<uint64_t()> hook) {
  if (backing_ == nullptr) return;
  backing_->spill_hook = std::move(hook);
}

void TripleIndex::Prefetch(uint32_t p) const {
  if (backing_ == nullptr || p >= num_predicates_) return;
  Backing& b = *backing_;
  {
    // Resident already? Touch it so the prefetch also refreshes LRU.
    std::lock_guard<std::mutex> lk(b.mu[p]);
    if (preds_[p] != nullptr) return;
  }
  const SliceLoc& so = b.so_loc[p];
  const SliceLoc& os = b.os_loc[p];
  b.file->Advise(so.dir_off,
                 static_cast<uint64_t>(so.dir_rows) * sizeof(SnapRowDirEntry),
                 MappedFile::Advice::kWillNeed);
  b.file->Advise(so.extent_off, so.extent_words * 4,
                 MappedFile::Advice::kWillNeed);
  b.file->Advise(os.dir_off,
                 static_cast<uint64_t>(os.dir_rows) * sizeof(SnapRowDirEntry),
                 MappedFile::Advice::kWillNeed);
  b.file->Advise(os.extent_off, os.extent_words * 4,
                 MappedFile::Advice::kWillNeed);
  b.prefetches.fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint32_t> TripleIndex::QuarantinedSlices() const {
  std::vector<uint32_t> out;
  if (backing_ == nullptr) return out;
  for (uint32_t p = 0; p < num_predicates_; ++p) {
    if (backing_->quarantined[p].load(std::memory_order_relaxed) != 0) {
      out.push_back(p);
    }
  }
  return out;
}

bool TripleIndex::VerifySlices(std::vector<uint32_t>* corrupt,
                               std::vector<uint32_t>* quarantined) const {
  if (backing_ == nullptr) return true;
  const Backing& b = *backing_;
  const uint8_t* base = b.file->data();
  bool ok = true;
  for (uint32_t p = 0; p < num_predicates_; ++p) {
    bool bad = false;
    for (const SliceLoc* loc : {&b.so_loc[p], &b.os_loc[p]}) {
      const uint64_t dir_bytes =
          static_cast<uint64_t>(loc->dir_rows) * sizeof(SnapRowDirEntry);
      if (Crc64(base + loc->dir_off, dir_bytes) != loc->dir_crc ||
          Crc64(base + loc->extent_off, loc->extent_words * 4) !=
              loc->extent_crc) {
        bad = true;
      }
    }
    if (bad) {
      ok = false;
      if (corrupt != nullptr) corrupt->push_back(p);
    }
    if (b.quarantined[p].load(std::memory_order_relaxed) != 0) {
      ok = false;
      if (quarantined != nullptr) quarantined->push_back(p);
    }
  }
  return ok;
}

const CompressedRow& TripleIndex::SoRow(uint32_t p, uint32_t s) const {
  if (p >= num_predicates_) return kEmptyRow;
  return FindRowIn(EnsureSlice(p).so_rows, s);
}

const CompressedRow& TripleIndex::OsRow(uint32_t p, uint32_t o) const {
  if (p >= num_predicates_) return kEmptyRow;
  return FindRowIn(EnsureSlice(p).os_rows, o);
}

BitMat TripleIndex::PoBitMat(uint32_t s) const {
  BitMat bm(num_predicates_, num_objects_);
  for (uint32_t p = 0; p < num_predicates_; ++p) {
    SlicePin pin = Slice(p);
    const CompressedRow& row = FindRowIn(pin->so_rows, s);
    if (!row.IsEmpty()) bm.SetRow(p, row);
  }
  return bm;
}

BitMat TripleIndex::PsBitMat(uint32_t o) const {
  BitMat bm(num_predicates_, num_subjects_);
  for (uint32_t p = 0; p < num_predicates_; ++p) {
    SlicePin pin = Slice(p);
    const CompressedRow& row = FindRowIn(pin->os_rows, o);
    if (!row.IsEmpty()) bm.SetRow(p, row);
  }
  return bm;
}

TripleIndex::SizeReport TripleIndex::ComputeSizeReport() const {
  SizeReport report;
  uint64_t rle_so = 0, rle_os = 0;
  for (uint32_t p = 0; p < num_predicates_; ++p) {
    SlicePin pin = Slice(p);
    for (const auto& [id, row] : pin->so_rows) {
      (void)id;
      report.so_bytes += row.PayloadBytes();
      rle_so +=
          CompressedRow::RleOnlyFromPositions(row.SetBits()).PayloadBytes();
      ++report.num_rows;
    }
    for (const auto& [id, row] : pin->os_rows) {
      (void)id;
      report.os_bytes += row.PayloadBytes();
      rle_os +=
          CompressedRow::RleOnlyFromPositions(row.SetBits()).PayloadBytes();
      ++report.num_rows;
    }
  }
  // All four families: SO + OS stored, P-O mirrors SO, P-S mirrors OS.
  report.hybrid_bytes = 2 * (report.so_bytes + report.os_bytes);
  report.rle_only_bytes = 2 * (rle_so + rle_os);
  return report;
}

void TripleIndex::WriteTo(std::ostream* out) const {
  out->write(kMagic, sizeof(kMagic));
  out->write(reinterpret_cast<const char*>(&num_subjects_), 4);
  out->write(reinterpret_cast<const char*>(&num_predicates_), 4);
  out->write(reinterpret_cast<const char*>(&num_objects_), 4);
  out->write(reinterpret_cast<const char*>(&num_common_), 4);
  out->write(reinterpret_cast<const char*>(&num_triples_), 8);
  for (uint32_t p = 0; p < num_predicates_; ++p) {
    out->write(reinterpret_cast<const char*>(&pred_counts_[p]), 8);
    SlicePin pin = Slice(p);
    WriteRows(pin->so_rows, out);
    WriteRows(pin->os_rows, out);
  }
}

TripleIndex TripleIndex::ReadFrom(std::istream* in) {
  char magic[8];
  in->read(magic, sizeof(magic));
  if (!std::equal(magic, magic + 8, kMagic)) {
    throw std::runtime_error("TripleIndex: bad magic");
  }
  TripleIndex idx;
  in->read(reinterpret_cast<char*>(&idx.num_subjects_), 4);
  in->read(reinterpret_cast<char*>(&idx.num_predicates_), 4);
  in->read(reinterpret_cast<char*>(&idx.num_objects_), 4);
  in->read(reinterpret_cast<char*>(&idx.num_common_), 4);
  in->read(reinterpret_cast<char*>(&idx.num_triples_), 8);
  idx.pred_counts_.resize(idx.num_predicates_);
  idx.non_empty_s_.resize(idx.num_predicates_);
  idx.non_empty_o_.resize(idx.num_predicates_);
  idx.preds_.resize(idx.num_predicates_);
  for (uint32_t p = 0; p < idx.num_predicates_; ++p) {
    in->read(reinterpret_cast<char*>(&idx.pred_counts_[p]), 8);
    auto slice = std::make_shared<PredSlice>();
    ReadRows(in, &slice->so_rows);
    ReadRows(in, &slice->os_rows);
    idx.non_empty_s_[p].Resize(idx.num_subjects_);
    idx.non_empty_o_[p].Resize(idx.num_objects_);
    for (const auto& [id, row] : slice->so_rows) {
      (void)row;
      idx.non_empty_s_[p].Set(id);
    }
    for (const auto& [id, row] : slice->os_rows) {
      (void)row;
      idx.non_empty_o_[p].Set(id);
    }
    idx.preds_[p] = std::move(slice);
  }
  return idx;
}

void TripleIndex::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("TripleIndex: cannot open " + path);
  WriteTo(&out);
}

TripleIndex TripleIndex::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("TripleIndex: cannot open " + path);
  return ReadFrom(&in);
}

}  // namespace lbr
