#include "bitmat/bitmat.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <istream>
#include <mutex>
#include <ostream>
#include <utility>

#include "util/thread_pool.h"

namespace lbr {

namespace {

/// Minimum *non-empty* rows before a fold/unfold shards across a pool:
/// below this the collective's wake/merge overhead beats the row work.
/// Gating on the populated count matters on the prune hot path — a heavily
/// pruned 100K-row matrix with 50 surviving rows folds serially in a
/// handful of ORs, and waking the pool for it would be a strict loss.
constexpr uint64_t kParallelRowThreshold = 4096;

/// Chunk size for row sharding: large enough to amortize the per-chunk
/// claim + (for folds) the whole-width merge OR, 64-aligned so each
/// non-empty-row word belongs to exactly one chunk.
uint32_t RowGrain(uint32_t num_rows, int slots) {
  uint32_t grain = num_rows / static_cast<uint32_t>(slots * 4);
  grain = std::max<uint32_t>(1024, grain);
  return (grain + 63) & ~63u;
}

bool ShouldParallelize(const ThreadPool* pool, const Bitvector& populated) {
  // Pool checks first: the popcount is only paid when a pool is actually
  // in play, so the (common) single-threaded configuration keeps its old
  // cost profile exactly.
  return pool != nullptr && pool->num_workers() > 0 &&
         !ThreadPool::InParallelRegion() &&
         populated.Count() >= kParallelRowThreshold;
}

/// Calls fn(i) for every set bit of `bits` in [begin, end), in order.
/// Chunk boundaries are 64-aligned, so each worker reads disjoint words;
/// the chunk cost is O(words in range + set bits in range), matching the
/// serial ForEachSetBit path instead of scanning every row index.
template <typename Fn>
void ForEachSetBitInRange(const Bitvector& bits, uint32_t begin, uint32_t end,
                          Fn&& fn) {
  const std::vector<uint64_t>& words = bits.words();
  size_t w_begin = begin >> 6;
  size_t w_end = std::min<size_t>(words.size(), (end + 63) >> 6);
  for (size_t w = w_begin; w < w_end; ++w) {
    uint64_t word = words[w];
    if (w == w_begin) word &= ~uint64_t{0} << (begin & 63);
    while (word != 0) {
      unsigned tz = __builtin_ctzll(word);
      uint32_t i = static_cast<uint32_t>((w << 6) + tz);
      if (i >= end) return;  // tail word of an unaligned final chunk
      fn(i);
      word &= word - 1;
    }
  }
}

}  // namespace

BitMat::BitMat(uint32_t num_rows, uint32_t num_cols)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      rows_(num_rows),
      non_empty_rows_(num_rows) {}

void BitMat::SetRow(uint32_t r, const std::vector<uint32_t>& positions) {
  SetRow(r, CompressedRow::FromPositions(positions));
}

void BitMat::SetRow(uint32_t r, CompressedRow row) {
  SetRowShared(r, row.IsEmpty()
                      ? RowHandle()
                      : std::make_shared<const CompressedRow>(std::move(row)));
}

void BitMat::SetRowShared(uint32_t r, RowHandle row) {
  assert(r < num_rows_);
  if (row != nullptr && row->IsEmpty()) row = nullptr;
  if (rows_[r] != nullptr) count_ -= rows_[r]->Count();
  rows_[r] = std::move(row);
  if (rows_[r] != nullptr) count_ += rows_[r]->Count();
  non_empty_rows_.Set(r, rows_[r] != nullptr);
  Touch();
}

Bitvector BitMat::Fold(Dim retain) const {
  Bitvector out;
  FoldInto(retain, &out);
  return out;
}

void BitMat::FoldInto(Dim retain, Bitvector* out, ExecContext* ctx,
                      ThreadPool* pool) const {
  if (retain == Dim::kRow) {
    // Incrementally maintained metadata — already "memoized" by
    // construction; not counted in the fold-cache telemetry.
    out->AssignResized(non_empty_rows_, num_rows_);
    return;
  }
  uint32_t s = col_fold_.state.load(std::memory_order_acquire);
  if (s == FoldMemo::kPublished) {
    // Word copy of the memo; no row is touched.
    out->AssignResized(*col_fold_.bits, num_cols_);
    if (ctx != nullptr) ctx->CountFoldHit();
    return;
  }
  if (s == FoldMemo::kIdle &&
      col_fold_.state.compare_exchange_strong(s, FoldMemo::kMissed,
                                              std::memory_order_acq_rel)) {
    // First fold at this version: only record that it happened (the
    // second-touch policy). Exactly one racing fold wins this edge.
    ComputeColFoldInto(out, pool);
    if (ctx != nullptr) ctx->CountFoldMiss();
    return;
  }
  // A failed CAS reloads `s`, so it now holds the freshly observed state.
  if (s == FoldMemo::kMissed &&
      col_fold_.state.compare_exchange_strong(s, FoldMemo::kComputing,
                                              std::memory_order_acq_rel)) {
    // Second fold at this version: the result is evidently reused — the
    // once path computes it and publishes the memo for everyone.
    ComputeColFoldInto(out, pool);
    col_fold_.bits = std::make_shared<const Bitvector>(*out);
    col_fold_.state.store(FoldMemo::kPublished, std::memory_order_release);
    if (ctx != nullptr) {
      ctx->CountFoldMiss();
      ctx->CountFoldOnce();
    }
    return;
  }
  if (s == FoldMemo::kPublished) {
    // Lost the race to a publisher: its memo is ready — word-copy it.
    out->AssignResized(*col_fold_.bits, num_cols_);
    if (ctx != nullptr) ctx->CountFoldHit();
    return;
  }
  // Another thread holds the once edge (kComputing) or just recorded the
  // miss: fold locally without touching the memo, never blocking.
  ComputeColFoldInto(out, pool);
  if (ctx != nullptr) ctx->CountFoldMiss();
}

void BitMat::ComputeColFoldInto(Bitvector* out, ThreadPool* pool) const {
  out->Resize(num_cols_);
  out->Clear();
  if (!ShouldParallelize(pool, non_empty_rows_)) {
    // Only non-empty rows contribute; each ORs in word-at-a-time.
    non_empty_rows_.ForEachSetBit(
        [this, out](uint32_t r) { rows_[r]->OrInto(out); });
    return;
  }
  // Sharded fold: each chunk ORs its rows into a slot-local partial from
  // the worker's arena, then merges into `out` word-wide under a mutex.
  // Workers only read immutable row payload through the shared handles.
  std::mutex merge_mu;
  uint32_t grain = RowGrain(num_rows_, pool->num_slots());
  pool->ParallelFor(
      0, num_rows_, grain,
      [this, out, &merge_mu](uint32_t begin, uint32_t end, ExecContext* ctx,
                             int /*slot*/) {
        ScratchBits partial(ctx, num_cols_);
        ForEachSetBitInRange(non_empty_rows_, begin, end, [&](uint32_t r) {
          rows_[r]->OrInto(partial.get());
        });
        std::lock_guard<std::mutex> lk(merge_mu);
        out->Or(*partial);
      });
}

void BitMat::MemoizeColFold(ThreadPool* pool) const {
  // Owner-exclusive warm path (cache entries are memoized before they are
  // published): no CAS dance, just compute and publish.
  if (ColFoldMemoized()) return;
  auto fold = std::make_shared<Bitvector>();
  ComputeColFoldInto(fold.get(), pool);
  col_fold_.bits = std::move(fold);
  col_fold_.state.store(FoldMemo::kPublished, std::memory_order_release);
}

BitMat::RowHandle BitMat::MaskedRow(const RowHandle& row,
                                    const Bitvector& mask,
                                    std::vector<uint32_t>* scratch) {
  if (row->IsSubsetOf(mask)) return row;  // no bit dropped: keep sharing
  scratch->clear();
  row->AppendMaskedPositions(mask, scratch);
  if (scratch->empty()) return nullptr;  // nothing survives
  return std::make_shared<const CompressedRow>(
      CompressedRow::FromPositions(*scratch));
}

void BitMat::Unfold(const Bitvector& mask, Dim retain, ExecContext* ctx,
                    ThreadPool* pool) {
  // Per-row-range masking step, shared by the serial and sharded paths.
  // Returns the count of removed bits in [begin, end) and records whether
  // anything changed. Writes only rows_[r] / non-empty bits inside the
  // range, so 64-aligned disjoint ranges never share a word.
  // Iteration walks only the populated rows of the range (word scan of
  // non_empty_rows_); mutating the bit at the row just visited is safe
  // because each word is captured before its bits are yielded.
  auto unfold_range = [this, &mask, retain](uint32_t begin, uint32_t end,
                                            std::vector<uint32_t>* scratch,
                                            bool* range_changed) -> uint64_t {
    uint64_t removed = 0;
    if (retain == Dim::kRow) {
      // Clear entire rows whose mask bit is 0 — a handle drop, no payload
      // walk; surviving rows stay shared.
      ForEachSetBitInRange(non_empty_rows_, begin, end, [&](uint32_t r) {
        if (r >= mask.size() || !mask.Get(r)) {
          removed += rows_[r]->Count();
          rows_[r] = nullptr;
          non_empty_rows_.Set(r, false);
          *range_changed = true;
        }
      });
    } else {
      // AND every row with the mask. A row that loses no bit keeps its
      // shared handle (aliased copies are untouched); a changed row is
      // re-encoded into a fresh handle from pooled scratch (MaskedRow, the
      // shared CoW masking step).
      ForEachSetBitInRange(non_empty_rows_, begin, end, [&](uint32_t r) {
        RowHandle masked = MaskedRow(rows_[r], mask, scratch);
        if (masked == rows_[r]) return;  // no bit dropped
        removed += rows_[r]->Count();
        rows_[r] = std::move(masked);
        if (rows_[r] != nullptr) removed -= rows_[r]->Count();
        non_empty_rows_.Set(r, rows_[r] != nullptr);
        *range_changed = true;
      });
    }
    return removed;
  };

  bool changed = false;
  uint64_t removed = 0;
  if (!ShouldParallelize(pool, non_empty_rows_)) {
    ScratchPositions scratch(ctx);
    removed = unfold_range(0, num_rows_, scratch.get(), &changed);
  } else {
    // 64-aligned chunks: each non-empty-row word is written by at most one
    // worker; rows_[] writes are disjoint by range; the count delta is
    // merged through an atomic.
    std::atomic<uint64_t> removed_total{0};
    std::atomic<bool> any_changed{false};
    uint32_t grain = RowGrain(num_rows_, pool->num_slots());
    pool->ParallelFor(
        0, num_rows_, grain,
        [&unfold_range, &removed_total, &any_changed](
            uint32_t begin, uint32_t end, ExecContext* chunk_ctx,
            int /*slot*/) {
          ScratchPositions scratch(chunk_ctx);
          bool range_changed = false;
          uint64_t r = unfold_range(begin, end, scratch.get(), &range_changed);
          if (r != 0) removed_total.fetch_add(r, std::memory_order_relaxed);
          if (range_changed) {
            any_changed.store(true, std::memory_order_relaxed);
          }
        },
        ctx);
    removed = removed_total.load();
    changed = any_changed.load();
  }
  count_ -= removed;
  if (changed) Touch();
}

BitMat BitMat::Transposed() const {
  // Bucket the set bits by column, then compress each bucket.
  std::vector<std::vector<uint32_t>> cols(num_cols_);
  ForEachBit([&cols](uint32_t r, uint32_t c) { cols[c].push_back(r); });
  BitMat t(num_cols_, num_rows_);
  for (uint32_t c = 0; c < num_cols_; ++c) {
    if (!cols[c].empty()) t.SetRow(c, cols[c]);
  }
  return t;
}

void BitMat::AppendColumnPositions(uint32_t c,
                                   std::vector<uint32_t>* out) const {
  non_empty_rows_.ForEachSetBit([this, c, out](uint32_t r) {
    if (rows_[r]->Test(c)) out->push_back(r);
  });
}

BitMat BitMat::DeepCopy() const {
  BitMat out(num_rows_, num_cols_);
  for (uint32_t r = 0; r < num_rows_; ++r) {
    if (rows_[r] != nullptr) out.SetRow(r, CompressedRow(*rows_[r]));
  }
  return out;
}

size_t BitMat::PayloadBytes() const {
  size_t bytes = 0;
  for (const RowHandle& r : rows_) {
    if (r != nullptr) bytes += r->PayloadBytes();
  }
  return bytes;
}

void BitMat::WriteTo(std::ostream* out) const {
  out->write(reinterpret_cast<const char*>(&num_rows_), sizeof(num_rows_));
  out->write(reinterpret_cast<const char*>(&num_cols_), sizeof(num_cols_));
  // Only non-empty rows are written: (row_index, row) pairs.
  uint32_t non_empty = 0;
  for (uint32_t r = 0; r < num_rows_; ++r) {
    if (rows_[r] != nullptr) ++non_empty;
  }
  out->write(reinterpret_cast<const char*>(&non_empty), sizeof(non_empty));
  for (uint32_t r = 0; r < num_rows_; ++r) {
    if (rows_[r] == nullptr) continue;
    out->write(reinterpret_cast<const char*>(&r), sizeof(r));
    rows_[r]->WriteTo(out);
  }
}

BitMat BitMat::ReadFrom(std::istream* in) {
  uint32_t num_rows = 0, num_cols = 0, non_empty = 0;
  in->read(reinterpret_cast<char*>(&num_rows), sizeof(num_rows));
  in->read(reinterpret_cast<char*>(&num_cols), sizeof(num_cols));
  in->read(reinterpret_cast<char*>(&non_empty), sizeof(non_empty));
  BitMat bm(num_rows, num_cols);
  for (uint32_t i = 0; i < non_empty; ++i) {
    uint32_t r = 0;
    in->read(reinterpret_cast<char*>(&r), sizeof(r));
    bm.SetRow(r, CompressedRow::ReadFrom(in));
  }
  return bm;
}

bool BitMat::operator==(const BitMat& other) const {
  if (num_rows_ != other.num_rows_ || num_cols_ != other.num_cols_ ||
      count_ != other.count_) {
    return false;
  }
  for (uint32_t r = 0; r < num_rows_; ++r) {
    const RowHandle& a = rows_[r];
    const RowHandle& b = other.rows_[r];
    if (a == b) continue;  // same handle (or both empty)
    if (a == nullptr || b == nullptr) return false;
    if (*a != *b) return false;
  }
  return true;
}

}  // namespace lbr
