#include "bitmat/bitmat.h"

#include <cassert>
#include <istream>
#include <ostream>
#include <utility>

namespace lbr {

BitMat::BitMat(uint32_t num_rows, uint32_t num_cols)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      rows_(num_rows),
      non_empty_rows_(num_rows) {}

void BitMat::SetRow(uint32_t r, const std::vector<uint32_t>& positions) {
  SetRow(r, CompressedRow::FromPositions(positions));
}

void BitMat::SetRow(uint32_t r, CompressedRow row) {
  SetRowShared(r, row.IsEmpty()
                      ? RowHandle()
                      : std::make_shared<const CompressedRow>(std::move(row)));
}

void BitMat::SetRowShared(uint32_t r, RowHandle row) {
  assert(r < num_rows_);
  if (row != nullptr && row->IsEmpty()) row = nullptr;
  if (rows_[r] != nullptr) count_ -= rows_[r]->Count();
  rows_[r] = std::move(row);
  if (rows_[r] != nullptr) count_ += rows_[r]->Count();
  non_empty_rows_.Set(r, rows_[r] != nullptr);
  Touch();
}

Bitvector BitMat::Fold(Dim retain) const {
  Bitvector out;
  FoldInto(retain, &out);
  return out;
}

void BitMat::FoldInto(Dim retain, Bitvector* out, ExecContext* ctx) const {
  if (retain == Dim::kRow) {
    // Incrementally maintained metadata — already "memoized" by
    // construction; not counted in the fold-cache telemetry.
    out->AssignResized(non_empty_rows_, num_rows_);
    return;
  }
  if (ColFoldMemoized()) {
    // Word copy of the memo; no row is touched.
    out->AssignResized(*col_fold_.bits, num_cols_);
    if (ctx != nullptr) ctx->CountFoldHit();
    return;
  }
  ComputeColFoldInto(out);
  if (col_fold_.miss_version == version_) {
    // Second fold at this version: the result is evidently reused — store
    // it so every further fold is a word copy.
    col_fold_.bits = std::make_shared<const Bitvector>(*out);
    col_fold_.version = version_;
  } else {
    col_fold_.miss_version = version_;
  }
  if (ctx != nullptr) ctx->CountFoldMiss();
}

void BitMat::ComputeColFoldInto(Bitvector* out) const {
  out->Resize(num_cols_);
  out->Clear();
  // Only non-empty rows contribute; each ORs in word-at-a-time.
  non_empty_rows_.ForEachSetBit(
      [this, out](uint32_t r) { rows_[r]->OrInto(out); });
}

void BitMat::MemoizeColFold() const {
  if (ColFoldMemoized()) return;
  auto fold = std::make_shared<Bitvector>();
  ComputeColFoldInto(fold.get());
  col_fold_.bits = std::move(fold);
  col_fold_.version = version_;
}

BitMat::RowHandle BitMat::MaskedRow(const RowHandle& row,
                                    const Bitvector& mask,
                                    std::vector<uint32_t>* scratch) {
  if (row->IsSubsetOf(mask)) return row;  // no bit dropped: keep sharing
  scratch->clear();
  row->AppendMaskedPositions(mask, scratch);
  if (scratch->empty()) return nullptr;  // nothing survives
  return std::make_shared<const CompressedRow>(
      CompressedRow::FromPositions(*scratch));
}

void BitMat::Unfold(const Bitvector& mask, Dim retain, ExecContext* ctx) {
  bool changed = false;
  if (retain == Dim::kRow) {
    // Clear entire rows whose mask bit is 0 — a handle drop, no payload
    // walk; surviving rows stay shared.
    for (uint32_t r = 0; r < num_rows_; ++r) {
      if (rows_[r] == nullptr) continue;
      if (r >= mask.size() || !mask.Get(r)) {
        count_ -= rows_[r]->Count();
        rows_[r] = nullptr;
        non_empty_rows_.Set(r, false);
        changed = true;
      }
    }
  } else {
    // AND every row with the mask. A row that loses no bit keeps its shared
    // handle (aliased copies are untouched); a changed row is re-encoded
    // into a fresh handle from pooled scratch (MaskedRow, the shared CoW
    // masking step).
    ScratchPositions scratch(ctx);
    for (uint32_t r = 0; r < num_rows_; ++r) {
      if (rows_[r] == nullptr) continue;
      RowHandle masked = MaskedRow(rows_[r], mask, scratch.get());
      if (masked == rows_[r]) continue;  // no bit dropped
      count_ -= rows_[r]->Count();
      rows_[r] = std::move(masked);
      if (rows_[r] != nullptr) count_ += rows_[r]->Count();
      non_empty_rows_.Set(r, rows_[r] != nullptr);
      changed = true;
    }
  }
  if (changed) Touch();
}

BitMat BitMat::Transposed() const {
  // Bucket the set bits by column, then compress each bucket.
  std::vector<std::vector<uint32_t>> cols(num_cols_);
  ForEachBit([&cols](uint32_t r, uint32_t c) { cols[c].push_back(r); });
  BitMat t(num_cols_, num_rows_);
  for (uint32_t c = 0; c < num_cols_; ++c) {
    if (!cols[c].empty()) t.SetRow(c, cols[c]);
  }
  return t;
}

BitMat BitMat::DeepCopy() const {
  BitMat out(num_rows_, num_cols_);
  for (uint32_t r = 0; r < num_rows_; ++r) {
    if (rows_[r] != nullptr) out.SetRow(r, CompressedRow(*rows_[r]));
  }
  return out;
}

size_t BitMat::PayloadBytes() const {
  size_t bytes = 0;
  for (const RowHandle& r : rows_) {
    if (r != nullptr) bytes += r->PayloadBytes();
  }
  return bytes;
}

void BitMat::WriteTo(std::ostream* out) const {
  out->write(reinterpret_cast<const char*>(&num_rows_), sizeof(num_rows_));
  out->write(reinterpret_cast<const char*>(&num_cols_), sizeof(num_cols_));
  // Only non-empty rows are written: (row_index, row) pairs.
  uint32_t non_empty = 0;
  for (uint32_t r = 0; r < num_rows_; ++r) {
    if (rows_[r] != nullptr) ++non_empty;
  }
  out->write(reinterpret_cast<const char*>(&non_empty), sizeof(non_empty));
  for (uint32_t r = 0; r < num_rows_; ++r) {
    if (rows_[r] == nullptr) continue;
    out->write(reinterpret_cast<const char*>(&r), sizeof(r));
    rows_[r]->WriteTo(out);
  }
}

BitMat BitMat::ReadFrom(std::istream* in) {
  uint32_t num_rows = 0, num_cols = 0, non_empty = 0;
  in->read(reinterpret_cast<char*>(&num_rows), sizeof(num_rows));
  in->read(reinterpret_cast<char*>(&num_cols), sizeof(num_cols));
  in->read(reinterpret_cast<char*>(&non_empty), sizeof(non_empty));
  BitMat bm(num_rows, num_cols);
  for (uint32_t i = 0; i < non_empty; ++i) {
    uint32_t r = 0;
    in->read(reinterpret_cast<char*>(&r), sizeof(r));
    bm.SetRow(r, CompressedRow::ReadFrom(in));
  }
  return bm;
}

bool BitMat::operator==(const BitMat& other) const {
  if (num_rows_ != other.num_rows_ || num_cols_ != other.num_cols_ ||
      count_ != other.count_) {
    return false;
  }
  for (uint32_t r = 0; r < num_rows_; ++r) {
    const RowHandle& a = rows_[r];
    const RowHandle& b = other.rows_[r];
    if (a == b) continue;  // same handle (or both empty)
    if (a == nullptr || b == nullptr) return false;
    if (*a != *b) return false;
  }
  return true;
}

}  // namespace lbr
