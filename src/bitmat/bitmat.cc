#include "bitmat/bitmat.h"

#include <cassert>
#include <istream>
#include <ostream>

namespace lbr {

BitMat::BitMat(uint32_t num_rows, uint32_t num_cols)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      rows_(num_rows),
      non_empty_rows_(num_rows) {}

void BitMat::SetRow(uint32_t r, const std::vector<uint32_t>& positions) {
  SetRow(r, CompressedRow::FromPositions(positions));
}

void BitMat::SetRow(uint32_t r, CompressedRow row) {
  assert(r < num_rows_);
  count_ -= rows_[r].Count();
  rows_[r] = std::move(row);
  count_ += rows_[r].Count();
  non_empty_rows_.Set(r, !rows_[r].IsEmpty());
}

Bitvector BitMat::Fold(Dim retain) const {
  Bitvector out;
  FoldInto(retain, &out);
  return out;
}

void BitMat::FoldInto(Dim retain, Bitvector* out) const {
  if (retain == Dim::kRow) {
    out->AssignResized(non_empty_rows_, num_rows_);
    return;
  }
  out->Resize(num_cols_);
  out->Clear();
  // Only non-empty rows contribute; each ORs in word-at-a-time.
  non_empty_rows_.ForEachSetBit(
      [this, out](uint32_t r) { rows_[r].OrInto(out); });
}

void BitMat::Unfold(const Bitvector& mask, Dim retain, ExecContext* ctx) {
  if (retain == Dim::kRow) {
    // Clear entire rows whose mask bit is 0.
    for (uint32_t r = 0; r < num_rows_; ++r) {
      if (rows_[r].IsEmpty()) continue;
      if (r >= mask.size() || !mask.Get(r)) {
        count_ -= rows_[r].Count();
        rows_[r] = CompressedRow();
        non_empty_rows_.Set(r, false);
      }
    }
  } else {
    // AND every row with the mask, re-encoding in place.
    ScratchPositions scratch(ctx);
    for (uint32_t r = 0; r < num_rows_; ++r) {
      if (rows_[r].IsEmpty()) continue;
      count_ -= rows_[r].Count();
      rows_[r].AndWithInPlace(mask, scratch.get());
      count_ += rows_[r].Count();
      non_empty_rows_.Set(r, !rows_[r].IsEmpty());
    }
  }
}

BitMat BitMat::Transposed() const {
  // Bucket the set bits by column, then compress each bucket.
  std::vector<std::vector<uint32_t>> cols(num_cols_);
  ForEachBit([&cols](uint32_t r, uint32_t c) { cols[c].push_back(r); });
  BitMat t(num_cols_, num_rows_);
  for (uint32_t c = 0; c < num_cols_; ++c) {
    if (!cols[c].empty()) t.SetRow(c, cols[c]);
  }
  return t;
}

size_t BitMat::PayloadBytes() const {
  size_t bytes = 0;
  for (const CompressedRow& r : rows_) bytes += r.PayloadBytes();
  return bytes;
}

void BitMat::WriteTo(std::ostream* out) const {
  out->write(reinterpret_cast<const char*>(&num_rows_), sizeof(num_rows_));
  out->write(reinterpret_cast<const char*>(&num_cols_), sizeof(num_cols_));
  // Only non-empty rows are written: (row_index, row) pairs.
  uint32_t non_empty = 0;
  for (uint32_t r = 0; r < num_rows_; ++r) {
    if (!rows_[r].IsEmpty()) ++non_empty;
  }
  out->write(reinterpret_cast<const char*>(&non_empty), sizeof(non_empty));
  for (uint32_t r = 0; r < num_rows_; ++r) {
    if (rows_[r].IsEmpty()) continue;
    out->write(reinterpret_cast<const char*>(&r), sizeof(r));
    rows_[r].WriteTo(out);
  }
}

BitMat BitMat::ReadFrom(std::istream* in) {
  uint32_t num_rows = 0, num_cols = 0, non_empty = 0;
  in->read(reinterpret_cast<char*>(&num_rows), sizeof(num_rows));
  in->read(reinterpret_cast<char*>(&num_cols), sizeof(num_cols));
  in->read(reinterpret_cast<char*>(&non_empty), sizeof(non_empty));
  BitMat bm(num_rows, num_cols);
  for (uint32_t i = 0; i < non_empty; ++i) {
    uint32_t r = 0;
    in->read(reinterpret_cast<char*>(&r), sizeof(r));
    bm.SetRow(r, CompressedRow::ReadFrom(in));
  }
  return bm;
}

bool BitMat::operator==(const BitMat& other) const {
  return num_rows_ == other.num_rows_ && num_cols_ == other.num_cols_ &&
         count_ == other.count_ && rows_ == other.rows_;
}

}  // namespace lbr
