#ifndef LBR_BITMAT_SNAPSHOT_FORMAT_H_
#define LBR_BITMAT_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace lbr {

/// Structured failure taxonomy for snapshot open/materialize. Every
/// corrupted-input path throws SnapshotError with one of these codes and no
/// partially constructed Database escapes (fail-closed contract of
/// DESIGN.md §11).
enum class SnapshotErrorCode : uint32_t {
  kIo = 0,          ///< open/stat/mmap/write failure (errno detail in what()).
  kBadMagic = 1,    ///< Not a snapshot file.
  kBadVersion = 2,  ///< Snapshot format version unknown to this build.
  kTruncated = 3,   ///< A section or extent extends past the file end.
  kChecksum = 4,    ///< A section/directory/extent checksum mismatched.
  kCorrupt = 5,     ///< Structurally invalid metadata (bad offsets/sizes).
};

const char* SnapshotErrorCodeName(SnapshotErrorCode code);

class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapshotErrorCode code, const std::string& msg)
      : std::runtime_error(std::string("snapshot: ") +
                           SnapshotErrorCodeName(code) + ": " + msg),
        code_(code) {}
  SnapshotErrorCode code() const { return code_; }

 private:
  SnapshotErrorCode code_;
};

/// On-disk snapshot layout (version 1, little-endian, DESIGN.md §11):
///
///   [SnapHeader | SectionEntry x num_sections | u64 header_crc]
///   dict section     — Dictionary::WriteTo bytes (crc-verified at open)
///   stats section    — PredicateStats::WriteTo bytes (crc-verified at open)
///   rowdir section   — concatenated RowDirEntry arrays, one array per
///                      (predicate, orientation); per-slice crc verified
///                      lazily at first materialization
///   meta section     — index dims + per-predicate counts, non-empty-row
///                      bitvectors and SliceDir records (crc-verified at
///                      open)
///   extents section  — page-aligned per-(predicate, orientation) payload
///                      word runs; per-slice crc verified lazily
///
/// Rows are stored as raw payload words in the extents plus a fixed-size
/// directory entry, so a materialized slice is a vector of zero-copy
/// CompressedRow *views* into the mapped extent — both kPositions and kRuns
/// payloads are position-independent 4-byte word arrays, usable in place.
inline constexpr char kSnapMagic[8] = {'L', 'B', 'R', 'S', 'N', 'P', '0', '1'};
inline constexpr uint32_t kSnapVersion = 1;

enum SnapSectionKind : uint32_t {
  kSnapSectionDict = 1,
  kSnapSectionStats = 2,
  kSnapSectionRowDir = 3,
  kSnapSectionMeta = 4,
  kSnapSectionExtents = 5,
};
inline constexpr uint32_t kSnapNumSections = 5;

#pragma pack(push, 1)
struct SnapHeader {
  char magic[8];
  uint32_t version;
  uint32_t page_size;
  uint64_t file_size;
  uint32_t num_sections;
  uint32_t reserved;
};

struct SnapSectionEntry {
  uint32_t kind;
  uint32_t reserved;
  uint64_t offset;  ///< Absolute file offset.
  uint64_t size;    ///< Bytes.
  uint64_t crc;     ///< Crc64 of the section bytes; 0 = verified elsewhere.
};

/// One non-empty row of a slice: fixed 24 bytes so a directory is readable
/// in place from the map at any index.
struct SnapRowDirEntry {
  uint32_t id;                 ///< Row id (subject or object).
  uint32_t count;              ///< Set bits (CompressedRow::Count()).
  uint64_t payload_off_words;  ///< Offset in words from the extent start.
  uint32_t payload_words;      ///< Payload length in words.
  uint8_t encoding;            ///< CompressedRow::Encoding.
  uint8_t first_bit;           ///< kRuns leading-run value.
  uint16_t reserved;
};

/// Meta-section record locating one (predicate, orientation) slice: its row
/// directory inside the rowdir section and its page-aligned payload extent
/// inside the extents section. Offsets are section-relative so the meta blob
/// can be built before the final file layout is known.
struct SnapSliceLocEntry {
  uint64_t dir_off;       ///< Bytes from the rowdir section start.
  uint32_t dir_rows;      ///< Directory entries (non-empty rows).
  uint32_t reserved;
  uint64_t extent_off;    ///< Bytes from the extents section start.
  uint64_t extent_words;  ///< Extent payload length in 4-byte words.
  uint64_t dir_crc;       ///< Crc64 of the directory bytes.
  uint64_t extent_crc;    ///< Crc64 of the extent payload bytes.
};
#pragma pack(pop)

static_assert(sizeof(SnapHeader) == 32, "SnapHeader layout");
static_assert(sizeof(SnapSectionEntry) == 32, "SnapSectionEntry layout");
static_assert(sizeof(SnapRowDirEntry) == 24, "SnapRowDirEntry layout");
static_assert(sizeof(SnapSliceLocEntry) == 48, "SnapSliceLocEntry layout");

inline constexpr uint64_t kSnapHeaderBytes =
    sizeof(SnapHeader) + kSnapNumSections * sizeof(SnapSectionEntry) + 8;

/// FNV-1a 64 over raw bytes: fast enough for lazy per-extent verification,
/// strong enough to catch the truncation/bit-rot classes the rejection
/// tests exercise. Incremental form: seed with kCrc64Init, chain `h`.
inline constexpr uint64_t kCrc64Init = 1469598103934665603ull;

inline uint64_t Crc64(const void* data, size_t len,
                      uint64_t h = kCrc64Init) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Reads a packed struct out of a byte buffer without alignment UB.
template <typename T>
inline T ReadPod(const uint8_t* base, uint64_t offset) {
  T out;
  std::memcpy(&out, base + offset, sizeof(T));
  return out;
}

/// Implemented in core/snapshot.cc; granted friend access to TripleIndex so
/// the writer can walk slices and the reader can install the mapped
/// backing without widening the public index API.
class SnapshotIO;

}  // namespace lbr

#endif  // LBR_BITMAT_SNAPSHOT_FORMAT_H_
