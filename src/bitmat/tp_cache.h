#ifndef LBR_BITMAT_TP_CACHE_H_
#define LBR_BITMAT_TP_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "bitmat/tp_loader.h"
#include "util/exec_context.h"

namespace lbr {

/// LRU cache of unmasked per-TP BitMats, keyed by the pattern text plus the
/// chosen orientation.
///
/// The paper's conclusion names "better cache management especially for
/// short running queries" as future work: for such queries, T_init (loading
/// the TP BitMats) dominates T_total, and repeated queries reload identical
/// BitMats. This cache keeps recently loaded *unpruned* TP BitMats; the
/// engine re-applies active-pruning masks on a cached copy with Unfold,
/// which costs a fraction of a cold load.
///
/// Only maskless loads are inserted (masked loads are query-specific).
/// Budgeted by total triples (set bits) held; eviction is strict LRU.
///
/// Hits are copy-on-write snapshots (DESIGN.md §4): the returned TpBitMat
/// shares the cached entry's row handles, so a hit costs O(rows) refcount
/// bumps instead of a payload deep copy, and any later mutation of the
/// snapshot (Unfold, SetRow) clones only the rows it changes — the cached
/// entry is never altered.
class TpCache {
 public:
  /// `triple_budget`: maximum total set bits held across cached BitMats.
  explicit TpCache(uint64_t triple_budget = 4u << 20)
      : budget_(triple_budget) {}

  /// Cache key for a TP + orientation.
  static std::string KeyFor(const TriplePattern& tp, bool prefer_subject_rows);

  /// Returns a CoW snapshot of the cached BitMat, or loads (unmasked),
  /// inserts, and returns it. The caller may Unfold/SetRow the snapshot
  /// freely — mutations clone only the touched rows, never the cached
  /// entry.
  TpBitMat GetOrLoad(const TripleIndex& index, const Dictionary& dict,
                     const TriplePattern& tp, bool prefer_subject_rows);

  /// Like GetOrLoad but applies active-pruning masks while copying out of
  /// the cache: rows the masks leave intact are shared by handle; only
  /// rows that lose bits are re-encoded. The cached entry itself stays
  /// unmasked. `ctx` provides pooled scratch for the masking.
  TpBitMat GetOrLoadMasked(const TripleIndex& index, const Dictionary& dict,
                           const TriplePattern& tp, bool prefer_subject_rows,
                           const ActiveMasks& masks,
                           ExecContext* ctx = nullptr);

  /// Drops everything (e.g. after the index changes).
  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t held_triples() const { return held_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    TpBitMat mat;
    std::list<std::string>::iterator lru_it;
  };

  void EvictToBudget();

  uint64_t budget_;
  uint64_t held_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<std::string> lru_;  // front = most recent
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace lbr

#endif  // LBR_BITMAT_TP_CACHE_H_
