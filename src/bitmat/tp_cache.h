#ifndef LBR_BITMAT_TP_CACHE_H_
#define LBR_BITMAT_TP_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bitmat/tp_loader.h"
#include "util/exec_context.h"
#include "util/query_control.h"

namespace lbr {

/// Sharded LRU cache of unmasked per-TP BitMats, keyed by the pattern text
/// plus the chosen orientation, safe for concurrent engines.
///
/// The paper's conclusion names "better cache management especially for
/// short running queries" as future work: for such queries, T_init (loading
/// the TP BitMats) dominates T_total, and repeated queries reload identical
/// BitMats. This cache keeps recently loaded *unpruned* TP BitMats; the
/// engine re-applies active-pruning masks on a cached copy with Unfold,
/// which costs a fraction of a cold load.
///
/// Concurrency model (DESIGN.md §5):
///  - Entries are striped across `num_shards` shards by the key's hash;
///    each shard has its own mutex, LRU list, and held-triple budget slice,
///    so N server threads sharing one warm cache only collide when they
///    touch the same stripe at the same instant.
///  - Loads are single-flight per key: the first thread to miss marks the
///    key in flight and loads outside the shard lock; concurrent callers of
///    the same key wait on the shard's condition variable and are served
///    the inserted entry as hits — one index scan, N snapshots.
///  - Hit/miss/contention counters are relaxed atomics: cheap, and
///    monotonically non-decreasing from any thread's point of view.
///  - Cached entries are immutable once published (their column-fold memo
///    is warmed *before* insertion), so handing out CoW snapshots under the
///    shard lock reads only frozen state.
///
/// Only maskless loads are inserted (masked loads are query-specific).
/// Budgeted by total triples (set bits) held — the budget is global (an
/// entry as large as the whole budget is still cacheable), while eviction
/// is LRU within a shard: the inserting shard evicts its own tail first,
/// then reclaims other shards' tails via try-lock (skipping any stripe
/// another thread holds; that stripe settles the debt on its next
/// insert).
///
/// Hits are copy-on-write snapshots (DESIGN.md §4): the returned TpBitMat
/// shares the cached entry's row handles, so a hit costs O(rows) refcount
/// bumps instead of a payload deep copy, and any later mutation of the
/// snapshot (Unfold, SetRow) clones only the rows it changes — the cached
/// entry is never altered.
class TpCache {
 public:
  /// `triple_budget`: maximum total set bits held across cached BitMats
  /// (global, enforced cooperatively across `num_shards` stripes). Tests
  /// that pin exact LRU behavior pass `num_shards = 1` to recover the
  /// single-list semantics; budgets smaller than the stripe count collapse
  /// to one stripe automatically.
  explicit TpCache(uint64_t triple_budget = 4u << 20, size_t num_shards = 8);

  /// Cache key for a TP + orientation.
  static std::string KeyFor(const TriplePattern& tp, bool prefer_subject_rows);

  /// Returns a CoW snapshot of the cached BitMat, or loads (unmasked),
  /// inserts, and returns it. The caller may Unfold/SetRow the snapshot
  /// freely — mutations clone only the touched rows, never the cached
  /// entry. Safe to call from any number of threads.
  TpBitMat GetOrLoad(const TripleIndex& index, const Dictionary& dict,
                     const TriplePattern& tp, bool prefer_subject_rows);

  /// Like GetOrLoad but applies active-pruning masks while copying out of
  /// the cache: rows the masks leave intact are shared by handle; only
  /// rows that lose bits are re-encoded. The cached entry itself stays
  /// unmasked. `ctx` provides pooled scratch for the masking, which runs
  /// on a private snapshot outside the shard lock.
  TpBitMat GetOrLoadMasked(const TripleIndex& index, const Dictionary& dict,
                           const TriplePattern& tp, bool prefer_subject_rows,
                           const ActiveMasks& masks,
                           ExecContext* ctx = nullptr);

  /// Drops everything (e.g. after the index changes). Loads in flight when
  /// Clear runs may still insert afterwards.
  void Clear();

  /// Joins the snapshot tier's global memory accounting (DESIGN.md §11):
  /// every published entry charges its approximate heap bytes to `meter`
  /// (not owned, must outlive the cache; shared with the mapped
  /// TripleIndex), and SpillToFit evicts LRU entries until the meter fits
  /// `budget_bytes`. Call before the cache holds entries.
  void SetMemoryAccounting(QueryControl* meter, uint64_t budget_bytes);

  /// Evicts LRU entries (coldest-stripe tails, try-lock, never blocking)
  /// until the shared meter fits the byte budget or the cache is empty.
  /// Returns bytes released. The index's spill pass runs this first, so
  /// rebuildable cache entries go before mapped slices.
  uint64_t SpillToFit();

  /// Entries evicted by SpillToFit (the budget-pressure counter surfaced
  /// in QueryStats / explain).
  uint64_t spill_evictions() const {
    return spill_evictions_.load(std::memory_order_relaxed);
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t held_triples() const {
    return held_.load(std::memory_order_relaxed);
  }
  size_t size() const { return entries_.load(std::memory_order_relaxed); }
  size_t num_shards() const { return shards_.size(); }

  /// Contention observability for QueryStats / the batch driver:
  /// `lock_contention` counts shard-mutex acquisitions that found the lock
  /// already held; `single_flight_waits` counts callers that slept waiting
  /// for another thread's in-flight load of their key.
  uint64_t lock_contention() const {
    return contention_.load(std::memory_order_relaxed);
  }
  uint64_t single_flight_waits() const {
    return flight_waits_.load(std::memory_order_relaxed);
  }

  /// Legacy per-instance fault-injection hook (also armed by the bare
  /// LBR_FAULT=<n> environment form at construction; the site:spec syntax
  /// belongs to util/fault_injection): every `rate`-th single-flight cache
  /// load of this instance throws a transient FaultInjectedError — rate 1
  /// fails every load, 0 disables. Loads are wrapped in RetryTransient, so
  /// rate >= 2 faults are absorbed after a backoff (each attempt still
  /// counted in faults_injected()); rate 1 exhausts the retry budget and
  /// surfaces, exercising the error path of the single-flight protocol:
  /// waiters must wake, observe no entry, and fall through to a direct
  /// load, leaving no poisoned entry behind. Thread-safe.
  void set_fault_rate(uint32_t rate) {
    fault_rate_.store(rate, std::memory_order_relaxed);
  }
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    TpBitMat mat;
    uint64_t cost = 0;   ///< Set bits at insertion (the budget unit).
    uint64_t bytes = 0;  ///< Approximate heap bytes (the meter's unit).
    std::list<std::string>::iterator lru_it;
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;         ///< Signaled when a load lands.
    std::list<std::string> lru;         ///< front = most recent
    std::unordered_map<std::string, Entry> entries;
    std::unordered_set<std::string> loading;  ///< Keys with in-flight loads.
    uint64_t held = 0;
  };

  Shard& ShardFor(const std::string& key) const;
  /// Locks a shard, counting the acquisition as contended when the lock
  /// was already held.
  std::unique_lock<std::mutex> LockShard(Shard* shard);
  /// Evicts LRU tails until the global held total fits the budget: first
  /// from `shard` (whose lock the caller holds), then from other stripes
  /// via try-lock (never blocking, so no lock-order deadlock).
  void EvictToBudget(Shard* shard);
  /// Drops `shard`'s LRU tail. Caller holds the shard lock.
  void EvictOne(Shard* shard);
  /// Loads `key` with single-flight semantics and publishes it into
  /// `shard`; returns the loaded (or concurrently inserted) snapshot.
  TpBitMat LoadAndPublish(Shard* shard, std::unique_lock<std::mutex> lk,
                          const std::string& key, const TripleIndex& index,
                          const Dictionary& dict, const TriplePattern& tp,
                          bool prefer_subject_rows);
  /// Throws on the loads the configured fault rate selects (test hook).
  void MaybeInjectFault();

  uint64_t budget_;
  /// Snapshot-tier accounting (null = not wired). `meter_` is charged and
  /// released under the owning shard's lock.
  QueryControl* meter_ = nullptr;
  uint64_t byte_budget_ = 0;
  std::atomic<uint64_t> spill_evictions_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> held_{0};
  std::atomic<size_t> entries_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> contention_{0};
  std::atomic<uint64_t> flight_waits_{0};
  std::atomic<uint32_t> fault_rate_{0};
  std::atomic<uint64_t> load_seq_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

}  // namespace lbr

#endif  // LBR_BITMAT_TP_CACHE_H_
